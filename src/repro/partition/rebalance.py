"""Blame-driven online LP re-partitioning at barrier windows.

The paper's HPROF mapping is *static*: one partition chosen before the
run. This module closes the observe -> attribute -> repartition loop at
runtime instead, in the style of game-theoretic iterative partitioning:
the controller of the multi-process backend watches per-window blame
concentration, and when one shard's straggler blame stays above a
threshold, it tries *diffusion-style local moves* — single-LP
migrations off the blamed shard — scores each candidate placement with
the what-if cost model over the trailing window history
(:func:`repro.obs.whatif.score_lp_placements`, no re-simulation), and
accepts the best move only if the model predicts a real gain. The
engine then migrates the LP at the next barrier.

Three design rules keep this sound:

1. **Decisions are made once, centrally.** Only the controller runs a
   :class:`Rebalancer`; workers receive finished migration plans over
   the control plane. There is no per-shard vote to diverge.
2. **Decisions are deterministic (by default).** The ``modeled`` blame
   source derives per-LP busy time from the window's event counters and
   the fault schedule's slowdown spans — pure functions of simulated
   quantities — so the same run always migrates the same LPs at the
   same barriers. The ``measured`` source trades that determinism for
   real wall-clock blame (PR 8's ``analyze_measured`` view).
3. **Placement changes execution, never outcomes.** The rebalancer only
   rewrites LP -> shard placement; the node -> LP assignment, window
   boundaries, and event keys are untouched, which is what keeps
   delivery logs and counter fingerprints byte-identical to a
   non-rebalanced run (the differential-determinism suite enforces it).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.schedule import FaultEvent

# NOTE: every repro-internal import in this module is deferred into the
# function that needs it. The partition package sits at the bottom of
# the import graph (topology.models pulls partition.graph), so a
# module-level import of engine/faults/obs here would close a cycle the
# moment ``import repro.faults`` (or anything reaching topology) runs.

__all__ = [
    "RebalanceConfig",
    "MigrationDecision",
    "Rebalancer",
    "slowdown_spans",
    "span_multipliers",
    "lp_affinity",
]

#: Blame sources a :class:`RebalanceConfig` may name.
_SOURCES = ("modeled", "measured")


@dataclass(frozen=True)
class RebalanceConfig:
    """Tuning knobs of the online re-balancer (all validated).

    ``threshold`` is the trailing blame-concentration share (one shard's
    fraction of all straggler blame over the last ``history`` windows)
    that arms the trigger; it must hold for ``patience`` consecutive
    windows before a migration is attempted, and after an accepted
    migration the trigger stays disarmed for ``cooldown`` windows so the
    new placement's history can accumulate. The trigger is also held off
    until ``history`` windows have been observed at all (warm-up) —
    early-run windows are injection ramp-up noise. ``min_gain_fraction`` is the
    what-if predicted improvement (relative to the current placement's
    score) a candidate must clear — moves the model calls a wash are
    rejected, which is what makes the loop convergent instead of
    oscillating.
    """

    threshold: float = 0.5
    patience: int = 2
    cooldown: int = 4
    history: int = 8
    max_migrations: int = 4
    min_gain_fraction: float = 0.02
    #: ``'modeled'`` (deterministic, from window counters + fault
    #: schedule) or ``'measured'`` (worker wall-clock, mp backend only)
    source: str = "modeled"
    #: cost-model rates for the modeled busy time (match the tracer's);
    #: the remote premium is charged per cross-shard send only
    event_cost_s: float = 10e-6
    remote_event_cost_s: float = 25e-6
    #: per-window synchronization cost added to every candidate's score
    sync_cost_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if self.history < 1:
            raise ValueError("history must be >= 1")
        if self.max_migrations < 0:
            raise ValueError("max_migrations must be >= 0")
        if self.min_gain_fraction < 0.0:
            raise ValueError("min_gain_fraction must be >= 0")
        if self.source not in _SOURCES:
            raise ValueError(f"source must be one of {_SOURCES}")
        if self.event_cost_s <= 0 or self.remote_event_cost_s <= 0:
            raise ValueError("event costs must be positive")
        if self.sync_cost_s < 0:
            raise ValueError("sync_cost_s must be >= 0")


@dataclass(frozen=True)
class MigrationDecision:
    """One accepted single-LP migration, effective at the next barrier."""

    #: barrier window index after which the LP executes on ``dst_shard``
    window_index: int
    lp: int
    src_shard: int
    dst_shard: int
    #: trailing blame share of ``src_shard`` when the trigger fired
    concentration: float
    #: what-if predicted wall saved over the trailing history, seconds
    predicted_gain_s: float

    def as_dict(self) -> dict:
        """Flat JSON-friendly form for summaries and bench documents."""
        return {
            "window_index": self.window_index,
            "lp": self.lp,
            "src_shard": self.src_shard,
            "dst_shard": self.dst_shard,
            "concentration": self.concentration,
            "predicted_gain_s": self.predicted_gain_s,
        }


def slowdown_spans(
    events: Iterable[FaultEvent], end_time: float
) -> list[tuple[int, float, float, float]]:
    """LP straggler spans ``(lp, start, end, factor)`` from a schedule.

    A *pure* replay of the fault injector's span pairing
    (:meth:`repro.faults.injector.FaultInjector.busy_multipliers`):
    ``lp.slow.start``/``lp.slow.end`` events pair up per LP, spans still
    open at ``end_time`` extend to it. Derived from the schedule alone —
    before the run even starts — so the modeled blame source sees the
    same stragglers the injector will create, deterministically.
    """
    from ..faults.schedule import FaultKind

    spans: list[tuple[int, float, float, float]] = []
    open_: dict[int, tuple[float, float]] = {}
    for fe in sorted(events, key=lambda e: (e.time, e.kind.value, e.target)):
        if fe.kind is FaultKind.LP_SLOWDOWN_START:
            lp = int(fe.target[0])
            open_[lp] = (fe.time, fe.param("factor", 1.0))
        elif fe.kind is FaultKind.LP_SLOWDOWN_END:
            lp = int(fe.target[0])
            opened = open_.pop(lp, None)
            if opened is not None:
                spans.append((lp, opened[0], fe.time, opened[1]))
    spans.extend(
        (lp, t0, end_time, factor)
        for lp, (t0, factor) in sorted(open_.items())
    )
    return spans


def span_multipliers(
    spans: Sequence[tuple[int, float, float, float]],
    window_start: float,
    window_end: float,
    num_lps: int,
) -> np.ndarray:
    """Per-LP busy multipliers for one window (injector semantics).

    Every span overlapping the window raises its LP's multiplier to the
    span's factor (max-combined when spans overlap), matching
    ``busy_multipliers``'s whole-window application — the overlap test
    itself goes through :func:`repro.engine.windows.window_overlap` so
    boundary windows resolve identically everywhere.
    """
    from ..engine.windows import window_overlap

    out = np.ones(num_lps, dtype=np.float64)
    for lp, t0, t1, factor in spans:
        if 0 <= lp < num_lps and window_overlap(t0, t1, window_start, window_end) > 0.0:
            out[lp] = max(out[lp], float(factor))
    return out


def lp_affinity(
    link_endpoints: Iterable[tuple[int, int]],
    assignment: np.ndarray,
    num_lps: int,
) -> np.ndarray:
    """Symmetric LP x LP link-count affinity from the network topology.

    The contraction of the node graph under the node -> LP assignment:
    entry ``(a, b)`` counts links whose endpoints map to LPs ``a`` and
    ``b``. This is the same structure ``partition.refine`` computes its
    connectivity gain over, lifted to LP granularity so candidate moves
    can be tie-broken toward placements that keep chatty LPs together.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    aff = np.zeros((num_lps, num_lps), dtype=np.float64)
    for u, v in link_endpoints:
        a, b = int(assignment[u]), int(assignment[v])
        if a != b:
            aff[a, b] += 1.0
            aff[b, a] += 1.0
    return aff


class Rebalancer:
    """Controller-side trigger/candidate/score loop over barrier windows.

    One instance lives on the multi-process controller (or the
    :class:`~repro.engine.parallel.LocalShardGroup` driver). Each
    barrier, :meth:`observe_window` ingests the window's merged per-LP
    counters; when the trailing blame concentration crosses the
    configured threshold it generates single-LP moves off the blamed
    shard, scores every candidate placement with
    :func:`repro.obs.whatif.score_lp_placements` over the trailing busy
    history, and returns an accepted :class:`MigrationDecision` (or
    ``None``). The caller is responsible for executing the migration at
    the barrier; ``shard_of`` here tracks the *decided* placement.

    LP 0 never migrates: the control-plane replica schedule is owned by
    LP 0's shard structurally (see ``engine/parallel.py``), so its
    placement is part of the protocol, not the load balance.
    """

    def __init__(
        self,
        config: RebalanceConfig,
        shards: Sequence[Sequence[int]],
        num_lps: int,
        spans: Sequence[tuple[int, float, float, float]] = (),
        affinity: np.ndarray | None = None,
    ) -> None:
        self.config = config
        self.num_lps = int(num_lps)
        self.num_shards = len(shards)
        self.shard_of = np.full(self.num_lps, -1, dtype=np.int64)
        for shard_id, lps in enumerate(shards):
            for lp in lps:
                self.shard_of[int(lp)] = shard_id
        if (self.shard_of < 0).any():
            raise ValueError("shards must cover every LP")
        self.spans = list(spans)
        if affinity is not None:
            affinity = np.asarray(affinity, dtype=np.float64)
            if affinity.shape != (self.num_lps, self.num_lps):
                raise ValueError("affinity must be (num_lps, num_lps)")
        self.affinity = affinity
        self._busy_history: deque[np.ndarray] = deque(maxlen=config.history)
        self._blame_history: deque[np.ndarray] = deque(maxlen=config.history)
        self._streak = 0
        self._cooldown = 0
        self.migrations: list[MigrationDecision] = []
        self.triggers = 0
        self.candidates_scored = 0

    @property
    def retired(self) -> bool:
        """True once the migration budget is spent.

        Callers on a latency-sensitive path (the barrier controller) can
        skip assembling per-window counter sums entirely — a retired
        re-balancer can never decide again.
        """
        return len(self.migrations) >= self.config.max_migrations

    # ------------------------------------------------------------------
    # Per-window ingestion
    # ------------------------------------------------------------------
    def observe_window(
        self,
        window_index: int,
        start: float,
        end: float,
        events_per_lp: Sequence[int],
        remote_per_lp: Sequence[int],
        measured_shard_busy: Sequence[float] | None = None,
    ) -> MigrationDecision | None:
        """Ingest one merged window; maybe decide a migration.

        ``remote_per_lp`` must count cross-*shard* sends under the
        placement that executed the window (the engines' per-window
        ``xshard_this_window`` column), not all cross-LP sends — the
        premium prices mail serialization, and mail between shard-mates
        never touches a pipe. Feeding the placement-independent cross-LP
        count instead makes every post-migration window look as
        expensive as before the move and the trigger oscillates.

        ``measured_shard_busy`` (per-shard wall-clock seconds, workers'
        execute spans) feeds the trigger when the config's source is
        ``'measured'``; candidate *scoring* always uses the modeled
        per-LP history, because measured data has shard granularity
        only. The modeled busy time applies the fault schedule's
        slowdown multipliers so modeled blame matches what the injector
        does to the cost model.
        """
        cfg = self.config
        if len(self.migrations) >= cfg.max_migrations:
            # Retired: the migration budget is spent, so no future window
            # can produce a decision. Skip the per-window bookkeeping —
            # the controller calls this on the barrier critical path
            # (workers sit idle until mail is routed), so dead trigger
            # arithmetic is pure added wall time.
            return None
        events = np.asarray(events_per_lp, dtype=np.float64)
        remote = np.asarray(remote_per_lp, dtype=np.float64)
        if events.shape[0] != self.num_lps or remote.shape[0] != self.num_lps:
            raise ValueError("window counters must have num_lps entries")
        busy = events * cfg.event_cost_s + remote * cfg.remote_event_cost_s
        if self.spans:
            busy *= span_multipliers(self.spans, start, end, self.num_lps)
        self._busy_history.append(busy)

        if cfg.source == "measured" and measured_shard_busy is not None:
            shard_busy = np.asarray(measured_shard_busy, dtype=np.float64)
            if shard_busy.shape[0] != self.num_shards:
                raise ValueError("measured busy must have num_shards entries")
        else:
            shard_busy = self._shard_busy(busy)
        # Straggler-takes-all at shard granularity: the whole window's
        # wait is blamed on the slowest shard (obs.blame semantics).
        blame = np.zeros(self.num_shards, dtype=np.float64)
        if self.num_shards > 0:
            wait = float((shard_busy.max() - shard_busy).sum())
            blame[int(np.argmax(shard_busy))] = wait
        self._blame_history.append(blame)

        if len(self._busy_history) < cfg.history:
            # Warm-up: no triggering until a full trailing history
            # exists. The first windows of a run are injection ramp-up,
            # and a migration decided on one window of noise tends to be
            # one the scorer immediately wants to reverse.
            return None
        if self._cooldown > 0:
            self._cooldown -= 1
            self._streak = 0
            return None
        concentration, blamed = self._concentration()
        if concentration >= cfg.threshold and blamed >= 0:
            self._streak += 1
        else:
            self._streak = 0
            return None
        if self._streak < cfg.patience:
            return None
        self.triggers += 1
        decision = self._decide(window_index, blamed, concentration)
        if decision is not None:
            self.shard_of[decision.lp] = decision.dst_shard
            self.migrations.append(decision)
            self._cooldown = cfg.cooldown
            self._streak = 0
            # The trailing history describes the placement that just
            # died: remote-event weights recorded before the move would
            # mis-blame the new placement for windows to come. Flush it;
            # the warm-up gate then forces a full post-move refill
            # before the next decision can arm.
            self._busy_history.clear()
            self._blame_history.clear()
        return decision

    # ------------------------------------------------------------------
    # Trigger arithmetic
    # ------------------------------------------------------------------
    def _concentration(self) -> tuple[float, int]:
        """Trailing blame concentration and the blamed shard (or -1).

        Shares go through :func:`repro.obs.blame.blame_shares`, so an
        all-idle or single-LP-shard history (zero total wait) yields
        exactly zero concentration and no blamed shard — the trigger
        can never divide by zero.
        """
        from ..obs.blame import blame_shares

        if not self._blame_history:
            return 0.0, -1
        totals = np.sum(self._blame_history, axis=0)
        shares = blame_shares(totals)
        if not shares.any():
            return 0.0, -1
        blamed = int(np.argmax(shares))
        return float(shares[blamed]), blamed

    def _shard_busy(self, busy: np.ndarray) -> np.ndarray:
        shard_busy = np.zeros(self.num_shards, dtype=np.float64)
        np.add.at(shard_busy, self.shard_of, busy)
        return shard_busy

    # ------------------------------------------------------------------
    # Candidate generation + what-if scoring
    # ------------------------------------------------------------------
    def _connectivity_gain(self, lp: int, dst: int) -> float:
        """``partition.refine``'s move gain lifted to LP granularity.

        With an affinity matrix: (links to the destination shard) minus
        (links kept on the home shard) — positive moves pull chatty LPs
        together, exactly the FM gain ``kway_refine`` ranks by. Without
        topology information every move ties at zero.
        """
        if self.affinity is None:
            return 0.0
        row = self.affinity[lp]
        internal = float(row[self.shard_of == self.shard_of[lp]].sum())
        toward = float(row[self.shard_of == dst].sum())
        return toward - internal

    def _decide(
        self, window_index: int, blamed: int, concentration: float
    ) -> MigrationDecision | None:
        # Deferred import: obs.whatif pulls in core.mapping, which
        # imports back into the partition package at module load.
        from ..obs.whatif import score_lp_placements

        cfg = self.config
        on_blamed = [
            int(lp)
            for lp in np.flatnonzero(self.shard_of == blamed)
            if lp != 0
        ]
        # A shard must keep at least one LP; moving its only LP would
        # just relocate the hotspot anyway.
        if len(on_blamed) == 0 or int((self.shard_of == blamed).sum()) <= 1:
            return None
        moves = [
            (lp, dst)
            for lp in on_blamed
            for dst in range(self.num_shards)
            if dst != blamed
        ]
        if not moves:
            return None
        history = np.stack(self._busy_history)
        layouts = [self.shard_of]
        for lp, dst in moves:
            layout = self.shard_of.copy()
            layout[lp] = dst
            layouts.append(layout)
        scores = score_lp_placements(
            history, layouts, self.num_shards, cfg.sync_cost_s
        )
        self.candidates_scored += len(moves)
        current = scores[0]
        ranked = sorted(
            (
                (scores[i + 1], -self._connectivity_gain(lp, dst), lp, dst)
                for i, (lp, dst) in enumerate(moves)
            ),
        )
        best_score, _, lp, dst = ranked[0]
        gain = current - best_score
        if gain <= 0.0 or gain < cfg.min_gain_fraction * current:
            return None
        return MigrationDecision(
            window_index=window_index,
            lp=int(lp),
            src_shard=blamed,
            dst_shard=int(dst),
            concentration=concentration,
            predicted_gain_s=float(gain),
        )
