"""Boundary Fiduccia-Mattheyses refinement for bisections.

After each uncoarsening step the projected partition is improved by FM
passes: vertices on the cut boundary are moved between the two sides in
order of gain (cut-weight reduction), subject to a balance constraint,
with hill-climbing (a bounded number of negative-gain moves is allowed
and the best prefix of the move sequence is kept).
"""

from __future__ import annotations

import heapq

import numpy as np

from .graph import WeightedGraph

__all__ = ["fm_refine", "balance_partition", "kway_refine"]


def _external_internal(
    graph: WeightedGraph, part: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-vertex external (cross-cut) and internal edge weight sums."""
    n = graph.num_vertices
    ed = np.zeros(n)
    idw = np.zeros(n)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    cross = part[src] != part[graph.adjncy]
    np.add.at(ed, src[cross], graph.adjwgt[cross])
    np.add.at(idw, src[~cross], graph.adjwgt[~cross])
    return ed, idw


def fm_refine(
    graph: WeightedGraph,
    part: np.ndarray,
    target_fractions: tuple[float, float] = (0.5, 0.5),
    imbalance_tolerance: float = 1.05,
    max_passes: int = 8,
    max_negative_moves: int = 50,
) -> np.ndarray:
    """Refine a 2-way partition in place-style (returns a new array).

    Parameters
    ----------
    target_fractions:
        Desired weight share of sides 0 and 1 (sums to 1; uneven targets
        support recursive bisection into unequal part counts).
    imbalance_tolerance:
        A move is allowed only if afterwards each side's weight is at most
        ``tolerance * target`` (or the move improves balance).
    max_negative_moves:
        FM hill-climbing window: stop a pass after this many consecutive
        non-improving moves.
    """
    part = part.astype(np.int64).copy()
    n = graph.num_vertices
    if n == 0:
        return part
    total = graph.total_vertex_weight
    targets = np.array(target_fractions, dtype=np.float64) * total
    side_weight = graph.partition_weights(part, 2)

    for _ in range(max_passes):
        ed, idw = _external_internal(graph, part)
        gain = ed - idw
        locked = np.zeros(n, dtype=bool)
        stamp = np.zeros(n, dtype=np.int64)
        heap: list[tuple[float, int, int]] = []
        boundary = np.flatnonzero(ed > 0)
        for v in boundary:
            heapq.heappush(heap, (-gain[v], 0, int(v)))

        best_cut_delta = 0.0
        cut_delta = 0.0
        moves: list[int] = []
        best_prefix = 0
        negatives = 0

        while heap and negatives < max_negative_moves:
            neg_g, st, v = heapq.heappop(heap)
            if locked[v] or st != stamp[v]:
                continue
            g = -neg_g
            src_side = int(part[v])
            dst_side = 1 - src_side
            vw = float(graph.vwgt[v])
            new_dst = side_weight[dst_side] + vw
            new_src = side_weight[src_side] - vw
            balance_ok = new_dst <= imbalance_tolerance * targets[dst_side]
            improves_balance = (
                side_weight[src_side] - targets[src_side]
                > new_dst - targets[dst_side]
            )
            if not (balance_ok or improves_balance):
                locked[v] = True
                continue

            # Execute the move.
            part[v] = dst_side
            side_weight[src_side] = new_src
            side_weight[dst_side] = new_dst
            locked[v] = True
            cut_delta -= g
            moves.append(v)
            if cut_delta < best_cut_delta - 1e-12:
                best_cut_delta = cut_delta
                best_prefix = len(moves)
                negatives = 0
            else:
                negatives += 1

            # Update neighbor gains.
            lo, hi = graph.xadj[v], graph.xadj[v + 1]
            for idx in range(lo, hi):
                u = int(graph.adjncy[idx])
                if locked[u]:
                    continue
                w = float(graph.adjwgt[idx])
                # v moved to u's side? then the u-v edge went internal/external.
                if part[u] == part[v]:
                    gain[u] -= 2.0 * w
                else:
                    gain[u] += 2.0 * w
                stamp[u] += 1
                heapq.heappush(heap, (-gain[u], int(stamp[u]), u))

        # Roll back moves after the best prefix.
        for v in moves[best_prefix:]:
            side = int(part[v])
            part[v] = 1 - side
            vw = float(graph.vwgt[v])
            side_weight[side] -= vw
            side_weight[1 - side] += vw

        if best_prefix == 0:
            break
    return part


def kway_refine(
    graph: WeightedGraph,
    assignment: np.ndarray,
    num_parts: int,
    imbalance_tolerance: float = 1.05,
    max_passes: int = 4,
) -> np.ndarray:
    """Greedy direct k-way boundary refinement.

    Recursive bisection never revisits early cuts; this pass fixes the
    leftovers: each boundary vertex may move to the neighboring part to
    which it has the largest connectivity, if the move reduces the cut
    and respects the balance bound. Passes repeat until no positive-gain
    move exists (or ``max_passes``).
    """
    part = np.asarray(assignment, dtype=np.int64).copy()
    n = graph.num_vertices
    if n == 0 or num_parts < 2:
        return part
    total = graph.total_vertex_weight
    cap = imbalance_tolerance * total / num_parts
    weights = graph.partition_weights(part, num_parts)
    counts = np.bincount(part, minlength=num_parts)

    for _ in range(max_passes):
        moved = 0
        # Boundary vertices: any with a neighbor in another part.
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
        boundary = np.unique(src[part[src] != part[graph.adjncy]])
        for v in boundary:
            home = int(part[v])
            # Connectivity of v to each adjacent part.
            nbrs = graph.neighbors(v)
            wts = graph.neighbor_weights(v)
            conn: dict[int, float] = {}
            for u, w in zip(nbrs, wts):
                conn[int(part[u])] = conn.get(int(part[u]), 0.0) + float(w)
            internal = conn.get(home, 0.0)
            vw = float(graph.vwgt[v])
            best_part, best_gain = home, 0.0
            for p, c in conn.items():
                if p == home:
                    continue
                gain = c - internal
                if gain > best_gain and weights[p] + vw <= cap:
                    # Don't empty the home part (by vertex count — a
                    # weight test is fragile to float rounding when the
                    # home part holds exactly one vertex).
                    if counts[home] > 1:
                        best_part, best_gain = p, gain
            if best_part != home:
                part[v] = best_part
                weights[home] -= vw
                weights[best_part] += vw
                counts[home] -= 1
                counts[best_part] += 1
                moved += 1
        if moved == 0:
            break
    return part


def balance_partition(
    graph: WeightedGraph,
    part: np.ndarray,
    target_fractions: tuple[float, float] = (0.5, 0.5),
    imbalance_tolerance: float = 1.05,
) -> np.ndarray:
    """Greedy rebalancing: move min-damage boundary vertices off the heavy side.

    Used when a projected partition violates the balance constraint so
    badly that FM's feasibility gate would lock up.
    """
    part = part.astype(np.int64).copy()
    total = graph.total_vertex_weight
    targets = np.array(target_fractions, dtype=np.float64) * total
    side_weight = graph.partition_weights(part, 2)

    guard = graph.num_vertices + 1
    while guard > 0:
        guard -= 1
        over = int(np.argmax(side_weight - imbalance_tolerance * targets))
        if side_weight[over] <= imbalance_tolerance * targets[over]:
            break
        ed, idw = _external_internal(graph, part)
        gain = ed - idw
        candidates = np.flatnonzero(part == over)
        if candidates.size == 0:
            break
        best = candidates[np.argmax(gain[candidates])]
        part[best] = 1 - over
        vw = float(graph.vwgt[best])
        side_weight[over] -= vw
        side_weight[1 - over] += vw
    return part
