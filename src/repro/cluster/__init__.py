"""Simulation cluster models (TeraGrid sync cost, Figure 5)."""

from .calibrate import calibrated_cluster, measure_barrier_cost, measure_event_cost
from .syncmodel import TERAGRID_SYNC_POINTS, ClusterSpec, SyncCostModel, teragrid_cluster

__all__ = [
    "SyncCostModel",
    "ClusterSpec",
    "teragrid_cluster",
    "TERAGRID_SYNC_POINTS",
    "measure_event_cost",
    "measure_barrier_cost",
    "calibrated_cluster",
]
