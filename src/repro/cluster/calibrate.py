"""Measure this machine's engine costs (how Figure 5 was made).

The paper measured the TeraGrid cluster's barrier cost and event
throughput and fed them into the partition evaluator. A real deployment
of this library would do the same; these microbenchmarks measure the
*local* engine — per-event execution cost on the sequential kernel and
per-window barrier overhead of the conservative engine — and assemble a
:class:`ClusterSpec` from them, so cost-model predictions can be grounded
in the hardware at hand instead of the modeled 2004 cluster.
"""

from __future__ import annotations

import numpy as np

from ..engine.conservative import ConservativeEngine
from ..engine.kernel import SimKernel
from ..obs.timers import Stopwatch
from .syncmodel import ClusterSpec, SyncCostModel

__all__ = [
    "measure_event_cost",
    "measure_barrier_cost",
    "calibrated_cluster",
]


def measure_event_cost(num_events: int = 20_000, repeats: int = 3) -> float:
    """Seconds per no-op event on the sequential kernel (median of runs)."""
    if num_events < 1:
        raise ValueError("num_events must be >= 1")
    samples = []
    for _ in range(max(1, repeats)):
        kernel = SimKernel()
        fn = _noop
        for i in range(num_events):
            kernel.schedule_at(i * 1e-6, fn, node=0)
        watch = Stopwatch()
        kernel.run()
        samples.append(watch.elapsed() / num_events)
    return float(np.median(samples))


def measure_barrier_cost(
    num_lps: int, num_windows: int = 2_000, repeats: int = 3
) -> float:
    """Seconds of engine overhead per empty synchronization window.

    On a real cluster this is the MPI barrier; in the one-process engine
    it is the per-window bookkeeping across ``num_lps`` queues — the same
    role in the cost model.
    """
    if num_lps < 1:
        raise ValueError("num_lps must be >= 1")
    samples = []
    assignment = np.arange(num_lps, dtype=np.int64)
    for _ in range(max(1, repeats)):
        engine = ConservativeEngine(assignment, num_lps, lookahead=1.0)
        watch = Stopwatch()
        engine.run(until=float(num_windows))
        samples.append(watch.elapsed() / num_windows)
    return float(np.median(samples))


def calibrated_cluster(
    name: str = "local",
    num_engine_nodes: int = 8,
    lp_counts: tuple[int, ...] = (2, 4, 8, 16),
    remote_factor: float = 2.5,
) -> ClusterSpec:
    """Assemble a :class:`ClusterSpec` from local measurements.

    ``remote_factor`` scales the event cost into the remote-event cost
    (serialization + transport), mirroring the default spec's ratio.
    """
    event_cost = measure_event_cost()
    points = {}
    last = 0.0
    for n in sorted(set(lp_counts)):
        cost = measure_barrier_cost(n, num_windows=500, repeats=2)
        # Enforce monotonicity (timer noise can invert adjacent points).
        last = max(cost, last * 1.0000001)
        points[n] = last
    return ClusterSpec(
        name=name,
        num_engine_nodes=num_engine_nodes,
        sync_cost=SyncCostModel(points=points),
        event_cost_s=event_cost,
        remote_event_cost_s=event_cost * remote_factor,
    )


def _noop() -> None:
    pass
