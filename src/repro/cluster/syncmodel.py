"""Cluster synchronization-cost model (paper Figure 5).

The paper measured the global synchronization cost of the TeraGrid
Itanium-2/Myrinet cluster as a function of engine node count; the
barrier executes once per MLL of simulated time, so this curve is the
quantity the hierarchical partitioner trades off against parallelism
(``Es = (MLL - C_N) / MLL``).

We encode the published anchor — ~0.58 ms at ~100 nodes, growing
monotonically over 6..112 nodes — as a measured-point table with
piecewise-linear interpolation, and expose the cluster spec used by the
experiments (90 engine nodes + 7 application nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SyncCostModel", "TERAGRID_SYNC_POINTS", "teragrid_cluster", "ClusterSpec"]

#: Modeled measurements of Figure 5 (node count -> barrier cost, seconds).
#: Anchored to the paper's quoted 0.58 ms at ~100 nodes; near-linear growth
#: with a fixed software overhead, the typical shape of tree barriers over
#: Myrinet at these scales.
TERAGRID_SYNC_POINTS: dict[int, float] = {
    2: 70e-6,
    6: 110e-6,
    16: 160e-6,
    48: 320e-6,
    80: 480e-6,
    100: 580e-6,
    112: 640e-6,
    128: 720e-6,
}


@dataclass(frozen=True)
class SyncCostModel:
    """Barrier cost ``C(N)`` from measured points.

    Piecewise-linear between points; linear extrapolation beyond the last
    segment; ``C(1) = 0`` (a single engine never synchronizes).
    """

    points: dict[int, float] = field(default_factory=lambda: dict(TERAGRID_SYNC_POINTS))

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("need at least two measured points")
        ns = sorted(self.points)
        cs = [self.points[n] for n in ns]
        if any(c <= 0 for c in cs):
            raise ValueError("sync costs must be positive")
        if any(b < a for a, b in zip(cs, cs[1:])):
            raise ValueError("sync cost must be non-decreasing in node count")
        object.__setattr__(self, "_ns", np.asarray(ns, dtype=np.float64))
        object.__setattr__(self, "_cs", np.asarray(cs, dtype=np.float64))

    def __call__(self, num_nodes: int) -> float:
        """Synchronization cost in seconds for ``num_nodes`` engines."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if num_nodes == 1:
            return 0.0
        ns: np.ndarray = self._ns  # type: ignore[attr-defined]
        cs: np.ndarray = self._cs  # type: ignore[attr-defined]
        if num_nodes >= ns[-1]:
            slope = (cs[-1] - cs[-2]) / (ns[-1] - ns[-2])
            return float(cs[-1] + slope * (num_nodes - ns[-1]))
        return float(np.interp(num_nodes, ns, cs))


@dataclass(frozen=True)
class ClusterSpec:
    """A simulation cluster: engine nodes, app nodes, and cost parameters.

    ``event_cost_s`` is the kernel's per-event CPU cost;
    ``remote_event_cost_s`` the extra cost of shipping an event to another
    engine node (serialization + MPI send; the receive side is folded in).
    Defaults model a 1.3 GHz Itanium-2 running a packet-level kernel
    (~100 k events/s/node).
    """

    name: str
    num_engine_nodes: int
    num_app_nodes: int = 0
    sync_cost: SyncCostModel = field(default_factory=SyncCostModel)
    event_cost_s: float = 10e-6
    remote_event_cost_s: float = 25e-6

    def sync_cost_s(self, num_nodes: int | None = None) -> float:
        """Barrier cost for ``num_nodes`` engines (defaults to the spec's count)."""
        return self.sync_cost(num_nodes if num_nodes is not None else self.num_engine_nodes)

    @property
    def max_event_rate_per_node(self) -> float:
        """Events/second one engine node sustains (used for Tseq estimate)."""
        return 1.0 / self.event_cost_s


def teragrid_cluster(num_engine_nodes: int = 90) -> ClusterSpec:
    """The paper's experimental platform: TeraGrid Itanium-2 cluster,
    90 engine nodes + 7 application nodes out of 128."""
    return ClusterSpec(
        name="TeraGrid Itanium-2 (Myrinet 2000, MPICH-GM)",
        num_engine_nodes=num_engine_nodes,
        num_app_nodes=7,
    )
