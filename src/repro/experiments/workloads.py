"""Workload installation: background HTTP + one live application.

Mirrors the paper's experimental traffic mix: continuous HTTP background
between client/server host sets, plus either the ScaLapack or the
GridNPB (HC + VP + MB combined) live application on dedicated app hosts,
entering the simulation through the online layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..netsim.app.gridnpb import (
    GridNpbApp,
    helical_chain,
    mixed_bag,
    visualization_pipeline,
)
from ..netsim.app.http import HttpTraffic
from ..netsim.app.scalapack import ScaLapackApp
from ..netsim.simulator import NetworkSimulator
from ..online.agent import Agent
from ..online.wrapsocket import WrapSocket
from ..topology.models import Network
from .config import ExperimentScale

__all__ = ["WorkloadHandles", "install_workload", "APP_KINDS"]

APP_KINDS = ("scalapack", "gridnpb")


@dataclass
class WorkloadHandles:
    """Live references to the installed workload components."""

    http: HttpTraffic
    apps: list = field(default_factory=list)
    clients: list[int] = field(default_factory=list)
    servers: list[int] = field(default_factory=list)
    app_hosts: list[int] = field(default_factory=list)

    @property
    def apps_finished(self) -> bool:
        """True when every installed application ran to completion."""
        return all(a.stats.finished for a in self.apps)


def _split_hosts(
    net: Network, scale: ExperimentScale, rng: np.random.Generator
) -> tuple[list[int], list[int], list[int]]:
    """Deterministically split hosts into clients / servers / app hosts."""
    hosts = net.host_ids()
    if len(hosts) < 4:
        raise ValueError("network needs at least 4 hosts for a workload")
    order = rng.permutation(len(hosts))
    shuffled = [hosts[int(i)] for i in order]
    n_app = min(scale.app_processes, max(2, len(hosts) // 4))
    app_hosts = shuffled[:n_app]
    remaining = shuffled[n_app:]
    n_clients, n_servers = scale.scaled_http_counts(len(hosts))
    n_clients = min(n_clients, max(1, len(remaining) - 1))
    n_servers = min(n_servers, max(1, len(remaining) - n_clients))
    clients = remaining[:n_clients]
    servers = remaining[n_clients : n_clients + n_servers]
    return clients, servers, app_hosts


def install_workload(
    sim: NetworkSimulator,
    agent: Agent,
    net: Network,
    app_kind: str,
    scale: ExperimentScale,
    seed: int = 0,
    duration_s: float | None = None,
    rng: np.random.Generator | None = None,
) -> WorkloadHandles:
    """Install background + live-application traffic into a simulator.

    ``app_kind`` is ``"scalapack"`` or ``"gridnpb"`` (the paper's two
    workloads). Applications start at t=1 s (after background warms up).

    Randomness (the client/server/app host split) flows through ``rng``
    when given; otherwise a generator is derived from ``seed``, so both
    paths are fully deterministic.
    """
    if app_kind not in APP_KINDS:
        raise ValueError(f"unknown app kind {app_kind!r}; expected one of {APP_KINDS}")
    WrapSocket.reset_listeners()
    rng = rng if rng is not None else np.random.default_rng(seed)
    clients, servers, app_hosts = _split_hosts(net, scale, rng)
    stop = duration_s if duration_s is not None else scale.duration_s

    http = HttpTraffic(
        sim,
        clients,
        servers,
        seed=seed + 1,
        mean_gap_s=scale.http_mean_gap_s,
        mean_file_bytes=scale.http_mean_file_bytes,
        stop_at=stop,
    )
    http.start()

    apps: list = []
    if app_kind == "scalapack":
        app = ScaLapackApp(
            agent,
            app_hosts,
            iterations=scale.scalapack_iterations,
            name=f"scalapack-{seed}",
        )
        app.start(at=1.0)
        apps.append(app)
    else:
        # The paper combines HC, VP and MB; spread them over the app hosts.
        third = max(1, len(app_hosts) // 3)
        groups = [app_hosts[:third], app_hosts[third : 2 * third], app_hosts[2 * third :]]
        flows = [helical_chain(), visualization_pipeline(), mixed_bag(seed=seed)]
        for i, (grp, wf) in enumerate(zip(groups, flows)):
            hosts = grp if grp else app_hosts
            app = GridNpbApp(agent, hosts, wf, name=f"{wf.name}-{seed}-{i}")
            app.start(at=1.0)
            apps.append(app)

    return WorkloadHandles(
        http=http, apps=apps, clients=clients, servers=servers, app_hosts=app_hosts
    )
