"""Render experiment results as the paper's figure rows."""

from __future__ import annotations

from ..core.approaches import Approach
from .runner import ExperimentResult

__all__ = ["format_result", "format_figure", "FIGURE_METRICS"]

#: metric key -> (paper figure titles, unit, format)
FIGURE_METRICS = {
    "sim_time_s": ("Simulation Time", "s", "{:.2f}"),
    "achieved_mll_ms": ("Achieved MLL", "ms", "{:.3f}"),
    "load_imbalance": ("Load Imbalance", "", "{:.3f}"),
    "parallel_efficiency": ("Parallel Efficiency", "", "{:.3f}"),
}


def format_figure(
    results: list[ExperimentResult], metric: str, title: str | None = None
) -> str:
    """One figure: rows = approaches, columns = (app_kind) results."""
    if metric not in FIGURE_METRICS:
        raise ValueError(f"unknown metric {metric!r}")
    name, unit, fmt = FIGURE_METRICS[metric]
    if title is None:
        kinds = {r.network_kind for r in results}
        title = f"{name} on {'/'.join(sorted(kinds))}"
    header = f"{'approach':<8}" + "".join(
        f"{r.app_kind:>14}" for r in results
    )
    lines = [title + (f" ({unit})" if unit else ""), header, "-" * len(header)]
    approaches = [row.approach for row in results[0].rows]
    for a in approaches:
        cells = []
        for r in results:
            try:
                cells.append(fmt.format(r.metric(a, metric)))
            except KeyError:
                cells.append("-")
        lines.append(f"{a.value:<8}" + "".join(f"{c:>14}" for c in cells))
    return "\n".join(lines)


def format_bars(result: ExperimentResult, metric: str, width: int = 40) -> str:
    """Render one metric as horizontal ASCII bars (one per approach) —
    the closest a terminal gets to the paper's bar-chart figures."""
    if metric not in FIGURE_METRICS:
        raise ValueError(f"unknown metric {metric!r}")
    name, unit, fmt = FIGURE_METRICS[metric]
    values = {row.approach.value: float(row.as_dict()[metric]) for row in result.rows}
    peak = max(values.values()) if values else 1.0
    lines = [f"{name} — {result.network_kind}/{result.app_kind}"
             + (f" ({unit})" if unit else "")]
    for label, v in values.items():
        bar = "#" * max(1, int(round(width * v / peak))) if peak > 0 else ""
        lines.append(f"{label:<8}|{bar:<{width}} {fmt.format(v)}")
    return "\n".join(lines)


def format_result(result: ExperimentResult) -> str:
    """Full metric table for one experiment."""
    lines = [
        f"Experiment: {result.network_kind} / {result.app_kind} "
        f"(scale={result.scale_name}, N={result.num_engines} engines, "
        f"{result.total_events} events over {result.duration_s:.0f}s virtual)",
        f"{'approach':<8}{'T (s)':>12}{'MLL (ms)':>12}{'imbalance':>12}{'PE':>8}",
    ]
    lines.append("-" * len(lines[-1]))
    for row in result.rows:
        lines.append(
            f"{row.approach.value:<8}{row.sim_time_s:>12.2f}"
            f"{row.achieved_mll_ms:>12.3f}{row.measured_imbalance:>12.3f}"
            f"{row.parallel_eff:>8.3f}"
        )
    return "\n".join(lines)
