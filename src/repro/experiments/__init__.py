"""Experiment pipelines reproducing the paper's evaluation (Figures 3-13)."""

from .aggregate import MetricStats, aggregate_results, format_aggregate, run_seed_sweep
from .chaos import ChaosResult, format_chaos_report, run_chaos_experiment
from .claims import PAPER_CLAIMS, ClaimCheck, evaluate_claims, format_claims
from .config import PAPER_SCALE, SCALES, ExperimentScale, default_scale
from .parallel import predict_from_window_stats, run_parallel_workload
from .report import FIGURE_METRICS, format_bars, format_figure, format_result
from .runner import (
    DEFAULT_APPROACHES,
    ApproachRow,
    ExperimentResult,
    build_network,
    evaluate_mappings,
    run_experiment,
    run_workload_simulation,
)
from .workloads import APP_KINDS, WorkloadHandles, install_workload

__all__ = [
    "ExperimentScale",
    "SCALES",
    "PAPER_SCALE",
    "default_scale",
    "run_experiment",
    "build_network",
    "run_workload_simulation",
    "evaluate_mappings",
    "ApproachRow",
    "ExperimentResult",
    "DEFAULT_APPROACHES",
    "install_workload",
    "WorkloadHandles",
    "APP_KINDS",
    "format_result",
    "format_figure",
    "FIGURE_METRICS",
    "run_parallel_workload",
    "predict_from_window_stats",
    "format_bars",
    "MetricStats",
    "aggregate_results",
    "run_seed_sweep",
    "format_aggregate",
    "ClaimCheck",
    "evaluate_claims",
    "format_claims",
    "PAPER_CLAIMS",
    "ChaosResult",
    "run_chaos_experiment",
    "format_chaos_report",
]
