"""Run the experiment workload on the conservative *parallel* engine.

The figure pipeline scores mappings against a sequentially recorded trace
(sound, because virtual-network behavior is mapping-independent). This
module closes the loop twice:

- **Modeled** (:func:`run_parallel_workload` default): the workload runs
  on the single-process :class:`repro.engine.ConservativeEngine` under a
  given mapping — per-LP event queues, cross-LP mailboxes, barrier
  windows of one achieved-MLL — exactly the structure of MaSSF's
  distributed engine, and the cost model converts its window counters
  into predicted cluster wall-clock.
- **Executed** (``executed=True``, or :func:`run_executed_workload`):
  the packet-mediated UDP workload actually runs across real worker
  processes on the :class:`repro.engine.ParallelConservativeEngine`, and
  the *measured* multi-process wall-clock is returned next to the cost
  model's prediction over the same window counters. Only packet-mediated
  traffic shards (see :mod:`repro.experiments.shard`), so the executed
  path substitutes seeded UDP background traffic for the online
  application mix — the modeled path keeps the full mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.mapping import NetworkMapping
from ..engine.conservative import ConservativeEngine
from ..engine.costmodel import (
    WallclockPrediction,
    predict_wallclock,
    sequential_time_estimate,
    window_for_mapping,
)
from ..engine.parallel import ParallelConservativeEngine, ParallelRunResult
from ..engine.windows import WindowStats
from ..cluster.syncmodel import ClusterSpec
from ..netsim.simulator import NetworkSimulator
from ..obs.distributed import (
    RegistrySnapshot,
    TraceSnapshot,
    merged_registry_snapshot,
    merged_trace_snapshot,
    window_calibration,
)
from ..obs.registry import Registry, get_registry, observed_run
from ..obs.timers import Stopwatch
from ..obs.trace import TraceBuffer, get_tracer, traced_run
from ..online.agent import Agent
from ..routing.fib import ForwardingPlane
from ..topology.models import Network
from .config import ExperimentScale
from .shard import merge_collected, run_reference, udp_spec
from .workloads import WorkloadHandles, install_workload

__all__ = [
    "run_parallel_workload",
    "run_traced_workload",
    "run_executed_workload",
    "ExecutedParallelRun",
    "migration_summary",
    "calibrated_cluster",
    "predict_from_window_stats",
    "predict_from_windows",
    "predicted_window_walls",
]


def run_parallel_workload(
    net: Network,
    fib: ForwardingPlane,
    app_kind: str,
    scale: ExperimentScale,
    mapping: NetworkMapping,
    duration_s: float,
    seed: int = 0,
    strict: bool = True,
    executed: bool = False,
    procs: int = 2,
    start_method: str = "fork",
):
    """Execute the workload on the parallel engine under ``mapping``.

    The engine's lookahead is the mapping's achieved MLL (clamped to the
    run length when nothing is cut), which the partition guarantees is a
    lower bound on every cross-LP link latency.

    With ``executed=True`` the run is dispatched to
    :func:`run_executed_workload`: ``procs`` real worker processes
    execute the packet-mediated UDP workload (the online application mix
    cannot shard — see :mod:`repro.experiments.shard`) and the return
    value is an :class:`ExecutedParallelRun` instead of the
    ``(engine, sim, handles)`` triple.
    """
    if executed:
        return run_executed_workload(
            net,
            mapping,
            duration_s,
            scale=scale,
            seed=seed,
            strict=strict,
            procs=procs,
            start_method=start_method,
        )
    lookahead = window_for_mapping(mapping.achieved_mll_s, duration_s)
    engine = ConservativeEngine(
        mapping.assignment, mapping.num_engines, lookahead, strict=strict
    )
    sim = NetworkSimulator(net, fib, engine)
    agent = Agent(sim)
    handles = install_workload(sim, agent, net, app_kind, scale, seed, duration_s)
    engine.run(until=duration_s)
    return engine, sim, handles


def run_traced_workload(
    net: Network,
    fib: ForwardingPlane,
    app_kind: str,
    scale: ExperimentScale,
    mapping: NetworkMapping,
    duration_s: float,
    cluster: ClusterSpec,
    seed: int = 0,
    strict: bool = True,
    trace_capacity: int | None = None,
) -> tuple[ConservativeEngine, NetworkSimulator, WorkloadHandles, Registry, TraceBuffer]:
    """Execute the workload with both the registry and the tracer live.

    The structured-trace variant of :func:`run_parallel_workload`: the
    tracer's cost-model calibration is taken from ``cluster`` (so window
    records carry comparable modeled busy times), both the registry and
    the trace buffer are reset and enabled for the run, and their
    post-run state is returned for blame analysis
    (:mod:`repro.obs.blame`) and what-if replay (:mod:`repro.obs.whatif`).
    """
    tracer = get_tracer()
    tracer.set_costs(cluster.event_cost_s, cluster.remote_event_cost_s)
    with observed_run() as reg, traced_run(tracer, capacity=trace_capacity) as tr:
        engine, sim, handles = run_parallel_workload(
            net, fib, app_kind, scale, mapping, duration_s, seed=seed, strict=strict
        )
    return engine, sim, handles, reg, tr


def predict_from_windows(
    window_stats: list[WindowStats],
    num_lps: int,
    cluster: ClusterSpec,
    shards: list[list[int]] | None = None,
) -> WallclockPrediction:
    """Cost-model prediction from recorded :class:`WindowStats` rows.

    The same window-max formula as :func:`repro.engine.costmodel
    .predict_from_trace`, applied to counters an engine actually
    recorded. With ``shards`` given (a partition of LP ids into worker
    processes), per-LP counts aggregate per shard first and the barrier
    cost is modeled over ``len(shards)`` nodes — the multi-process
    deployment shape. Cross-LP sends inside one shard still count at the
    remote rate, so the sharded compute term is an upper bound.
    """
    if not window_stats:
        n = len(shards) if shards is not None else num_lps
        events = np.zeros((0, n))
        return predict_wallclock(events, events.copy(), cluster, n)
    events = np.stack([ws.events_per_lp for ws in window_stats])
    remotes = np.stack([ws.remote_sends_per_lp for ws in window_stats])
    if shards is not None:
        events = np.stack([events[:, lps].sum(axis=1) for lps in shards], axis=1)
        remotes = np.stack([remotes[:, lps].sum(axis=1) for lps in shards], axis=1)
        return predict_wallclock(events, remotes, cluster, len(shards))
    return predict_wallclock(events, remotes, cluster, num_lps)


def predicted_window_walls(
    window_stats: list[WindowStats],
    cluster: ClusterSpec,
    shards: list[list[int]],
) -> dict[int, float]:
    """Cost-model wall-clock *per window*, keyed by window index.

    The per-window slice of :func:`predict_from_windows` under the shard
    deployment shape: each window costs the busiest shard's compute
    (events at the local rate plus cross-LP sends at the remote rate)
    plus one barrier over ``len(shards)`` nodes. This is what the
    measured-vs-modeled calibration table
    (:func:`repro.obs.distributed.window_calibration`) compares against
    the workers' measured window spans.
    """
    sync = cluster.sync_cost_s(len(shards)) if shards else 0.0
    out: dict[int, float] = {}
    for ws in window_stats:
        busy = 0.0
        for lps in shards:
            shard_busy = (
                float(ws.events_per_lp[lps].sum()) * cluster.event_cost_s
                + float(ws.remote_sends_per_lp[lps].sum()) * cluster.remote_event_cost_s
            )
            busy = max(busy, shard_busy)
        out[ws.window_index] = busy + sync
    return out


def predict_from_window_stats(
    engine: ConservativeEngine, cluster: ClusterSpec
) -> WallclockPrediction:
    """Cost-model prediction from the engine's *measured* window counters.

    This is the ground-truth variant of :func:`repro.engine.costmodel
    .predict_from_trace`: the same window-max formula applied to the
    per-window per-LP counts the parallel engine actually recorded.
    """
    return predict_from_windows(engine.window_stats, engine.num_lps, cluster)


def calibrated_cluster(
    procs: int,
    reference_wall_s: float,
    total_events: int,
    name: str = "local-mp",
) -> ClusterSpec:
    """A :class:`ClusterSpec` calibrated to *this machine's* event rate.

    ``event_cost_s`` comes straight from a measured single-process run
    (``reference_wall_s / total_events``), so the model's sequential term
    reproduces the measured baseline by construction; the remote-event
    premium keeps the default 2.5x ratio and the barrier curve stays the
    paper's Figure 5 table. The gap between this prediction and the
    measured multi-process wall-clock therefore isolates what the model
    does *not* capture locally: pipe-based barrier cost and mail
    serialization on oversubscribed cores.
    """
    if reference_wall_s <= 0.0:
        raise ValueError("reference_wall_s must be positive")
    event_cost = reference_wall_s / max(1, int(total_events))
    return ClusterSpec(
        name=name,
        num_engine_nodes=procs,
        event_cost_s=event_cost,
        remote_event_cost_s=2.5 * event_cost,
    )


@dataclass
class ExecutedParallelRun:
    """One executed multi-process run next to its cost-model prediction.

    ``measured_speedup`` is single-process wall over multi-process wall
    on this machine; ``predicted_speedup`` is the cost model's
    ``Tseq / Tpar`` over the same per-window counters with the
    machine-calibrated event rate (:func:`calibrated_cluster`). Both are
    honest: on a single-core container the measured number is <= 1 while
    the model — which assumes one core per engine node — predicts > 1.
    """

    procs: int
    duration_s: float
    lookahead: float
    result: ParallelRunResult
    collected: dict
    reference_wall_s: float
    reference_events: int
    cluster: ClusterSpec
    predicted: WallclockPrediction
    meta: dict = field(default_factory=dict)
    #: merged worker+controller instrument snapshot (obs enabled only)
    merged_registry: RegistrySnapshot | None = None
    #: merged worker+controller trace snapshot (obs enabled only)
    merged_trace: TraceSnapshot | None = None
    #: measured-vs-modeled per-window wall table (obs enabled only)
    calibration: dict | None = None

    @property
    def measured_wall_s(self) -> float:
        """Wall-clock seconds of the multi-process run."""
        return self.result.wall_s

    @property
    def measured_speedup(self) -> float:
        """Measured sequential wall over measured multi-process wall."""
        return self.reference_wall_s / self.result.wall_s if self.result.wall_s else 0.0

    @property
    def predicted_seq_s(self) -> float:
        """Cost-model sequential time for the reference event count."""
        return sequential_time_estimate(self.reference_events, self.cluster)

    @property
    def predicted_speedup(self) -> float:
        """Cost-model sequential time over cost-model parallel time."""
        return self.predicted_seq_s / self.predicted.total_s if self.predicted.total_s else 0.0

    def summary(self) -> dict:
        """Flat picklable summary (obs snapshot / bench document rows)."""
        return {
            "procs": self.procs,
            "duration_s": self.duration_s,
            "lookahead_s": self.lookahead,
            "events_executed": self.result.events_executed,
            "reference_wall_s": self.reference_wall_s,
            "measured_wall_s": self.measured_wall_s,
            "measured_speedup": self.measured_speedup,
            "predicted_wall_s": self.predicted.total_s,
            "predicted_speedup": self.predicted_speedup,
            "predicted_sync_fraction": self.predicted.sync_fraction,
            "barrier_wait_s": list(self.result.barrier_wait_s),
            "mail_bytes": self.result.total_mail_bytes,
            "num_windows": len(self.result.window_stats),
            "obs_bytes": sum(self.result.obs_bytes),
            **(
                {"migrations": len(self.result.migrations)}
                if self.result.migrations
                else {}
            ),
            **(
                {
                    "checkpoints_taken": self.result.recovery["checkpoints_taken"],
                    "checkpoint_bytes": self.result.recovery["checkpoint_bytes"],
                    "respawns": self.result.recovery["respawns"],
                    "adoptions": self.result.recovery["adoptions"],
                }
                if self.result.recovery is not None
                else {}
            ),
            **(
                {"calibration_overall_ratio": self.calibration["overall_ratio"]}
                if self.calibration
                else {}
            ),
            **self.meta,
        }


def run_executed_workload(
    net: Network,
    mapping: NetworkMapping,
    duration_s: float,
    scale: ExperimentScale | None = None,
    packets: int | None = None,
    seed: int = 0,
    strict: bool = True,
    procs: int = 2,
    start_method: str = "fork",
    record_deliveries: bool = False,
    window_timeout_s: float = 120.0,
    incremental_obs: bool = False,
    rebalance=None,
    recovery=None,
    faults: list | None = None,
    hot_fraction: float = 0.0,
    hot_span: int | None = None,
) -> ExecutedParallelRun:
    """Execute UDP background traffic across real worker processes.

    The same seeded workload runs twice: once on the single-process
    :class:`ConservativeEngine` (the measured baseline — and, by
    determinism, the ground truth the multi-process delivery log must
    byte-match) and once on the :class:`ParallelConservativeEngine` with
    ``procs`` workers. The returned :class:`ExecutedParallelRun` carries
    the measured wall-clocks and the cost-model prediction computed from
    the multi-process run's own window counters with a
    machine-calibrated event rate.

    ``packets`` defaults from ``scale`` (four per HTTP client — enough
    cross-shard traffic to exercise the mail path without drowning the
    run in serialization) or to 2000 when no scale is given.

    ``rebalance`` (a :class:`repro.partition.rebalance.RebalanceConfig`)
    turns on blame-driven online LP re-partitioning at barriers;
    ``recovery`` (a :class:`repro.engine.recovery.RecoveryConfig`) turns
    on barrier-aligned checkpointing plus worker respawn/adoption — the
    two are mutually exclusive (the engine constructor refuses the
    combination); ``faults`` injects a fault schedule into the workload
    (both the
    reference and the multi-process pass see it, so the byte-identity
    guarantee still holds); ``hot_fraction``/``hot_span`` skew the
    traffic onto a hot node prefix (see :func:`repro.experiments.shard
    .udp_spec`) — the concentrated-load shape re-balancing targets.
    """
    if packets is None:
        packets = 4 * scale.http_clients if scale is not None else 2000
    lookahead = window_for_mapping(mapping.achieved_mll_s, duration_s)
    spec = udp_spec(
        net, duration_s, packets=packets, seed=seed,
        record_deliveries=record_deliveries, faults=faults,
        hot_fraction=hot_fraction, hot_span=hot_span,
    )
    # The reference pass is a timing baseline, not an observed run: shield
    # the process-global registry and tracer so the merged multi-process
    # snapshot covers exactly one execution of the workload (the
    # merged-snapshot identity tests depend on this).
    reg = get_registry()
    tracer = get_tracer()
    reg_was, tracer_was = reg.enabled, tracer.enabled
    reg.enabled = False
    tracer.enabled = False
    watch = Stopwatch()
    try:
        ref_engine, _ref_collected = run_reference(
            spec, mapping.assignment, mapping.num_engines, lookahead, duration_s,
            strict=strict,
        )
    finally:
        reference_wall_s = watch.elapsed()
        reg.enabled = reg_was
        tracer.enabled = tracer_was
    cluster = calibrated_cluster(procs, reference_wall_s, ref_engine.events_executed)
    if tracer.enabled:
        # Workers inherit these costs through the obs config stanza, so
        # their window records carry modeled busy times comparable to the
        # calibration table's predictions.
        tracer.set_costs(cluster.event_cost_s, cluster.remote_event_cost_s)
    engine = ParallelConservativeEngine(
        mapping.assignment,
        mapping.num_engines,
        lookahead,
        procs=procs,
        strict=strict,
        start_method=start_method,
        window_timeout_s=window_timeout_s,
        incremental_obs=incremental_obs,
        rebalance=rebalance,
        recovery=recovery,
    )
    result = engine.run_scenario(spec, until=duration_s)
    collected = merge_collected(result.collected)
    predicted = predict_from_windows(
        result.window_stats, mapping.num_engines, cluster, shards=engine.shards
    )
    merged_registry = merged_trace = calibration = None
    if result.registry_snapshots or result.trace_snapshots:
        # Order matters: calibration records its calibration.* instruments
        # into the controller registry, and the merged registry snapshot
        # is captured afterwards so it includes them.
        merged_trace = merged_trace_snapshot(result)
        calibration = window_calibration(
            merged_trace.measured,
            predicted_window_walls(result.window_stats, cluster, engine.shards),
        )
        merged_registry = merged_registry_snapshot(result)
    return ExecutedParallelRun(
        procs=procs,
        duration_s=duration_s,
        lookahead=lookahead,
        result=result,
        collected=collected,
        reference_wall_s=reference_wall_s,
        reference_events=ref_engine.events_executed,
        cluster=cluster,
        predicted=predicted,
        meta={"packets": packets, "seed": seed, "start_method": start_method},
        merged_registry=merged_registry,
        merged_trace=merged_trace,
        calibration=calibration,
    )


def migration_summary(result: ParallelRunResult) -> dict:
    """Flat summary of a run's accepted LP migrations (bench/CLI rows)."""
    return {
        "migrations": len(result.migrations),
        "moves": [d.as_dict() for d in result.migrations],
        "final_shards": [list(s) for s in result.shards],
    }
