"""Run the experiment workload on the conservative *parallel* engine.

The figure pipeline scores mappings against a sequentially recorded trace
(sound, because virtual-network behavior is mapping-independent). This
module closes the loop: it executes the same workload on the
:class:`repro.engine.ConservativeEngine` under a given mapping — per-LP
event queues, cross-LP mailboxes, barrier windows of one achieved-MLL —
with live traffic admitted at barriers through the Agent, exactly the
structure of MaSSF's distributed engine. Tests verify that background
traffic behaves identically to the sequential kernel and that full
workloads run violation-free in strict mode.
"""

from __future__ import annotations

import numpy as np

from ..core.mapping import NetworkMapping
from ..engine.conservative import ConservativeEngine
from ..engine.costmodel import WallclockPrediction, predict_wallclock, window_for_mapping
from ..cluster.syncmodel import ClusterSpec
from ..netsim.simulator import NetworkSimulator
from ..obs.registry import Registry, observed_run
from ..obs.trace import TraceBuffer, get_tracer, traced_run
from ..online.agent import Agent
from ..routing.fib import ForwardingPlane
from ..topology.models import Network
from .config import ExperimentScale
from .workloads import WorkloadHandles, install_workload

__all__ = [
    "run_parallel_workload",
    "run_traced_workload",
    "predict_from_window_stats",
]


def run_parallel_workload(
    net: Network,
    fib: ForwardingPlane,
    app_kind: str,
    scale: ExperimentScale,
    mapping: NetworkMapping,
    duration_s: float,
    seed: int = 0,
    strict: bool = True,
) -> tuple[ConservativeEngine, NetworkSimulator, WorkloadHandles]:
    """Execute the workload on the parallel engine under ``mapping``.

    The engine's lookahead is the mapping's achieved MLL (clamped to the
    run length when nothing is cut), which the partition guarantees is a
    lower bound on every cross-LP link latency.
    """
    lookahead = window_for_mapping(mapping.achieved_mll_s, duration_s)
    engine = ConservativeEngine(
        mapping.assignment, mapping.num_engines, lookahead, strict=strict
    )
    sim = NetworkSimulator(net, fib, engine)
    agent = Agent(sim)
    handles = install_workload(sim, agent, net, app_kind, scale, seed, duration_s)
    engine.run(until=duration_s)
    return engine, sim, handles


def run_traced_workload(
    net: Network,
    fib: ForwardingPlane,
    app_kind: str,
    scale: ExperimentScale,
    mapping: NetworkMapping,
    duration_s: float,
    cluster: ClusterSpec,
    seed: int = 0,
    strict: bool = True,
    trace_capacity: int | None = None,
) -> tuple[ConservativeEngine, NetworkSimulator, WorkloadHandles, Registry, TraceBuffer]:
    """Execute the workload with both the registry and the tracer live.

    The structured-trace variant of :func:`run_parallel_workload`: the
    tracer's cost-model calibration is taken from ``cluster`` (so window
    records carry comparable modeled busy times), both the registry and
    the trace buffer are reset and enabled for the run, and their
    post-run state is returned for blame analysis
    (:mod:`repro.obs.blame`) and what-if replay (:mod:`repro.obs.whatif`).
    """
    tracer = get_tracer()
    tracer.set_costs(cluster.event_cost_s, cluster.remote_event_cost_s)
    with observed_run() as reg, traced_run(tracer, capacity=trace_capacity) as tr:
        engine, sim, handles = run_parallel_workload(
            net, fib, app_kind, scale, mapping, duration_s, seed=seed, strict=strict
        )
    return engine, sim, handles, reg, tr


def predict_from_window_stats(
    engine: ConservativeEngine, cluster: ClusterSpec
) -> WallclockPrediction:
    """Cost-model prediction from the engine's *measured* window counters.

    This is the ground-truth variant of :func:`repro.engine.costmodel
    .predict_from_trace`: the same window-max formula applied to the
    per-window per-LP counts the parallel engine actually recorded.
    """
    if not engine.window_stats:
        events = np.zeros((0, engine.num_lps))
        return predict_wallclock(events, events.copy(), cluster, engine.num_lps)
    events = np.stack([ws.events_per_lp for ws in engine.window_stats])
    remotes = np.stack([ws.remote_sends_per_lp for ws in engine.window_stats])
    return predict_wallclock(events, remotes, cluster, engine.num_lps)
