"""Experiment scales: the paper's parameters and laptop-scale versions.

The paper's evaluation (Sections 4.2 / 5.2.1): 20,000 routers + 10,000
hosts (single-AS) or 100 ASes x 200 routers (multi-AS), 8,000 HTTP
clients -> 2,000 servers (5 s mean gap, 50 KB mean file), ScaLapack and
GridNPB as live applications, 90 engine nodes of the TeraGrid cluster,
~30 minute runs.

A pure-Python simulator on one core cannot execute that in benchmark
time, so scales are parameterized; the default is selected with the
``REPRO_SCALE`` environment variable (``small`` | ``medium`` | ``large``
| ``paper``). All claims the benchmarks verify are *relative* between
approaches and hold across scales (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

__all__ = ["ExperimentScale", "SCALES", "default_scale", "PAPER_SCALE"]


@dataclass(frozen=True)
class ExperimentScale:
    """All size knobs of one experiment configuration."""

    name: str
    # single-AS network (Section 4.2)
    flat_routers: int
    flat_hosts: int
    # multi-AS network (Section 5.2.1)
    num_ases: int
    routers_per_as: int
    multi_hosts: int
    # background traffic
    http_clients: int
    http_servers: int
    http_mean_gap_s: float = 5.0
    http_mean_file_bytes: float = 50_000.0
    # simulation engines (the paper uses 90 + 7 app nodes)
    num_engines: int = 90
    # live applications
    app_processes: int = 7
    scalapack_iterations: int = 12
    # durations (simulated seconds)
    duration_s: float = 1800.0
    profile_duration_s: float = 120.0
    # engine calibration: per-event and per-remote-event CPU cost of the
    # modeled cluster. Sub-paper scales generate fewer events per virtual
    # second than the paper's 20k-router network, so the modeled engine is
    # proportionally slower — keeping compute/synchronization in the
    # paper's regime (N * C(N) * windows ~ total event cost).
    event_cost_s: float = 10e-6
    remote_event_cost_s: float = 25e-6

    def scaled_http_counts(self, num_hosts: int) -> tuple[int, int]:
        """Clamp client/server counts to the hosts actually available."""
        total = self.http_clients + self.http_servers
        if total + self.app_processes <= num_hosts:
            return self.http_clients, self.http_servers
        avail = max(2, num_hosts - self.app_processes)
        clients = max(1, int(avail * self.http_clients / total))
        servers = max(1, avail - clients)
        return clients, servers


PAPER_SCALE = ExperimentScale(
    name="paper",
    flat_routers=20_000,
    flat_hosts=10_000,
    num_ases=100,
    routers_per_as=200,
    multi_hosts=10_000,
    http_clients=8_000,
    http_servers=2_000,
    num_engines=90,
    app_processes=7,
    scalapack_iterations=30,
    duration_s=1800.0,
    profile_duration_s=120.0,
)

SCALES: dict[str, ExperimentScale] = {
    # Sub-paper scales compress the workload: fewer clients issue requests
    # at a proportionally smaller think-time gap, so the *event density
    # per synchronization window per engine* — the dimensionless quantity
    # that determines the compute/synchronization balance — stays in the
    # paper's regime even though the network is orders smaller.
    "small": ExperimentScale(
        name="small",
        flat_routers=400,
        flat_hosts=300,
        num_ases=16,
        routers_per_as=25,
        multi_hosts=260,
        http_clients=230,
        http_servers=56,
        http_mean_gap_s=0.6,
        num_engines=12,
        app_processes=6,
        scalapack_iterations=6,
        duration_s=10.0,
        profile_duration_s=4.0,
        event_cost_s=75e-6,
        remote_event_cost_s=190e-6,
    ),
    "medium": ExperimentScale(
        name="medium",
        flat_routers=2_000,
        flat_hosts=800,
        num_ases=32,
        routers_per_as=60,
        multi_hosts=700,
        http_clients=550,
        http_servers=140,
        http_mean_gap_s=0.6,
        num_engines=24,
        app_processes=7,
        scalapack_iterations=10,
        duration_s=12.0,
        profile_duration_s=5.0,
        event_cost_s=50e-6,
        remote_event_cost_s=125e-6,
    ),
    "large": ExperimentScale(
        name="large",
        flat_routers=8_000,
        flat_hosts=3_000,
        num_ases=60,
        routers_per_as=120,
        multi_hosts=3_000,
        http_clients=2_200,
        http_servers=550,
        http_mean_gap_s=1.2,
        num_engines=48,
        app_processes=7,
        scalapack_iterations=16,
        duration_s=15.0,
        profile_duration_s=6.0,
        event_cost_s=25e-6,
        remote_event_cost_s=60e-6,
    ),
    "paper": PAPER_SCALE,
}


def default_scale() -> ExperimentScale:
    """Scale selected by ``REPRO_SCALE`` (default: ``small``)."""
    name = os.environ.get("REPRO_SCALE", "small").lower()
    try:
        return SCALES[name]
    except KeyError:
        valid = ", ".join(sorted(SCALES))
        raise ValueError(f"REPRO_SCALE={name!r}; expected one of: {valid}") from None
