"""Replayable scenario builders for the multi-process backend.

A :class:`~repro.engine.parallel.ScenarioSpec` names a module-level
builder function here; every worker process replays the builder
identically and keeps only the events of the LPs it owns (see
:mod:`repro.engine.parallel`). Builders therefore must be deterministic
pure functions of their ``params`` — seeded RNGs only, no ambient
state — and everything they put in ``params`` or return from
``collect()`` crosses a process boundary through
:mod:`repro.serialization`, so it must pickle.

Two scenarios live here:

- :func:`build_chain_scenario` — the differential-determinism chain
  workload (optionally with a fault schedule), byte-compared across
  1/2/4 worker processes and against the single-process engines.
- :func:`build_udp_scenario` — seeded UDP background traffic over a
  generated topology, the executed-parallelism experiment and bench
  workload.

Only *packet-mediated* workloads shard: the online wrapper layer
(:mod:`repro.online`) registers callbacks in a process-wide listener
table and hands nested closures to the scheduler, so its applications
(HTTP, ScaLAPACK, GridNPB) cannot be replayed per-process — the same
shared-state boundary the BGP distributed-simulation feasibility study
reports (PAPERS.md). Executed multi-process runs use the UDP scenario;
modeled runs keep the full application mix.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..engine.conservative import ConservativeEngine
from ..engine.parallel import ScenarioSpec, ShardScenario, _resolve_builder
from ..faults import FaultInjector, FaultSchedule
from ..netsim.packet import Packet, Protocol
from ..netsim.simulator import NetworkSimulator
from ..obs.registry import Registry
from ..obs.trace import TraceBuffer
from ..routing.fib import ForwardingPlane
from ..serialization import network_from_dict, network_to_dict
from ..topology.models import Network, NodeKind

__all__ = [
    "DeliveryRecorder",
    "LpStatePort",
    "ShardCheckpointPort",
    "ShardCollector",
    "build_chain_scenario",
    "build_udp_scenario",
    "chain_spec",
    "udp_spec",
    "run_reference",
    "merge_collected",
    "delivery_log_bytes",
]


class DeliveryRecorder:
    """Shadow ``sim._deliver`` with an execution-cursor-tagged log.

    Each record is ``(epoch, lane, time, node, flow_id, seq)``; the
    leading cursor pair is what lets per-shard logs merge into the exact
    single-process order (stable sort on the cursor — each ``(epoch,
    lane)`` phase executes wholly on one shard, in recorded order). The
    single-process engines have no cursor and tag ``(0, 0)``; their log
    is already in execution order.
    """

    def __init__(self, sim: NetworkSimulator, engine: Any) -> None:
        self.sim = sim
        self.engine = engine
        self.inner = sim._deliver
        self.records: list[tuple[int, int, float, int, int, int]] = []
        sim._deliver = self.record

    def record(self, node: int, packet: Packet) -> None:
        """The recording wrapper installed over ``sim._deliver``."""
        epoch, lane = getattr(self.engine, "execution_cursor", (0, 0))
        self.records.append(
            (epoch, lane, round(self.sim.now, 12), node, packet.flow_id, packet.seq)
        )
        self.inner(node, packet)


class LpStatePort:
    """``capture_lp`` / ``restore_lp`` hooks for the packet scenarios.

    An LP's *dynamic* scenario state is the per-direction link busy
    horizons of the directions it transmits on (direction ``d`` of a
    link is owned by the LP of the endpoint traffic leaves from), plus
    the RED/fault RNG bit-generator states of links *both* of whose
    endpoints live on the LP — those streams are drawn exclusively by
    the LP's events, so the adopting shard must resume them mid-stream.
    Counters never migrate: they are partial sums that merge by
    summation across shards regardless of where the LP finishes the
    run. Link indices align across shards because construction is
    replayed identically everywhere.
    """

    def __init__(self, sim: NetworkSimulator, assignment: Any) -> None:
        self.sim = sim
        self.assignment = np.asarray(assignment, dtype=np.int64)

    def _direction_owners(self, lr: Any) -> tuple[int, int]:
        return (
            int(self.assignment[lr.link.u]),
            int(self.assignment[lr.link.v]),
        )

    def capture(self, lp: int) -> dict[str, Any]:
        """Picklable blob of LP-owned link state (see class docstring)."""
        busy: list[tuple[int, int, float]] = []
        rngs: list[tuple[int, Any, Any]] = []
        for idx, lr in enumerate(self.sim.links):
            owners = self._direction_owners(lr)
            for d in (0, 1):
                if owners[d] == lp:
                    busy.append((idx, d, float(lr.busy_until[d])))
            if owners[0] == lp and owners[1] == lp:
                fault_state = (
                    lr._fault_rng.bit_generator.state
                    if lr._fault_rng is not None
                    else None
                )
                rngs.append((idx, lr._rng.bit_generator.state, fault_state))
        return {"busy": busy, "rng": rngs}

    def restore(self, lp: int, state: dict[str, Any]) -> None:
        """Apply a :meth:`capture` blob on the adopting shard."""
        for idx, d, value in state["busy"]:
            self.sim.links[idx].busy_until[d] = value
        for idx, rng_state, fault_state in state["rng"]:
            lr = self.sim.links[idx]
            lr._rng.bit_generator.state = rng_state
            if fault_state is not None:
                # Vessel generator, never drawn from: its bit-generator
                # state is overwritten with the migrated stream state on
                # the next line (no seeded stream is ever created here).
                gen = np.random.Generator(
                    type(lr._rng.bit_generator)()
                )
                gen.bit_generator.state = fault_state
                lr._fault_rng = gen


class ShardCheckpointPort:
    """``capture_shard`` / ``restore_shard`` hooks for barrier checkpoints.

    Where :class:`LpStatePort` captures the *migratable* slice of one
    LP's state (busy horizons and exclusively-owned RNG streams — never
    counters), a checkpoint must restore a shard to *exactly* its own
    partial view at a barrier: per-link dynamics **including** the
    partial traffic/loss counters this shard accumulated, the replica
    RNG streams of boundary links, the simulator's global counters and
    fault state, the delivery log, and the fault injector's position.
    Restore happens over a freshly rebuilt scenario (setup replayed from
    the spec), so the forwarding plane starts all-up and is re-derived
    from the captured down sets — routing is a pure function of the
    up/down topology, so re-applying the surviving state transitions
    reconverges to the identical tables.

    The ``lp`` section reuses :meth:`LpStatePort.capture` per owned LP.
    It is *not* read by the shard's own restore (the link section
    supersedes it); the controller uses it to build adoption payloads in
    the migration wire format when a dead shard's LPs move to a
    survivor — adopted links then resume with restored busy/RNG state
    but pristine counters, so the dead shard's checkpointed partial
    sums and the adopter's re-accumulated remainder still sum to the
    reference totals.
    """

    def __init__(
        self,
        engine: Any,
        sim: NetworkSimulator,
        fib: ForwardingPlane,
        recorder: DeliveryRecorder,
        port: LpStatePort,
        collector: "ShardCollector",
        injector: FaultInjector | None = None,
        tracer: TraceBuffer | None = None,
    ) -> None:
        self.engine = engine
        self.sim = sim
        self.fib = fib
        self.recorder = recorder
        self.port = port
        self.collector = collector
        self.injector = injector
        self.tracer = tracer

    def capture(self) -> dict[str, Any]:
        """Picklable blob of the whole shard's dynamic scenario state.

        Deterministic by construction — fixed key order, sets emitted as
        sorted lists — so the same shard state always encodes to the
        same bytes (the digest-stability contract of
        ``tests/test_checkpoint_roundtrip.py``).
        """
        links: list[dict[str, Any]] = []
        for lr in self.sim.links:
            links.append(
                {
                    "busy_until": [float(v) for v in lr.busy_until],
                    "bytes_carried": [int(v) for v in lr.bytes_carried],
                    "packets_carried": [int(v) for v in lr.packets_carried],
                    "packets_dropped": [int(v) for v in lr.packets_dropped],
                    "packets_lost": [int(v) for v in lr.packets_lost],
                    "packets_corrupted": [int(v) for v in lr.packets_corrupted],
                    "failed": bool(lr.failed),
                    "loss_prob": float(lr.loss_prob),
                    "corrupt_prob": float(lr.corrupt_prob),
                    "rng": lr._rng.bit_generator.state,
                    "fault_rng": (
                        lr._fault_rng.bit_generator.state
                        if lr._fault_rng is not None
                        else None
                    ),
                }
            )
        sim_state = {
            "counters": self.sim.counters.as_dict(),
            "node_packets": self.sim.node_packets.tolist(),
            "down_nodes": sorted(self.sim._down_nodes),
            "dropped_fault": int(self.sim.dropped_fault),
        }
        inj = None
        if self.injector is not None:
            inj = {
                "counts": self.injector.counts.as_dict(),
                "links_down": sorted(self.injector.links_down),
                "nodes_down": sorted(self.injector.nodes_down),
                "slowdown_spans": [
                    list(span) for span in self.injector.slowdown_spans
                ],
                "open_slowdowns": sorted(
                    (lp, t0, factor)
                    for lp, (t0, factor) in self.injector._open_slowdowns.items()
                ),
                "faults": (
                    list(self.tracer.faults) if self.tracer is not None else []
                ),
            }
        lp_blobs = {
            int(lp): self.port.capture(int(lp))
            for lp in getattr(self.engine, "owned_lps", [])
        }
        return {
            "links": links,
            "sim": sim_state,
            "injector": inj,
            "lp": lp_blobs,
            "collect": self.collector.collect(),
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Apply a :meth:`capture` blob over a freshly rebuilt scenario."""
        for lr, ls in zip(self.sim.links, state["links"]):
            lr.busy_until[:] = [float(v) for v in ls["busy_until"]]
            lr.bytes_carried[:] = [int(v) for v in ls["bytes_carried"]]
            lr.packets_carried[:] = [int(v) for v in ls["packets_carried"]]
            lr.packets_dropped[:] = [int(v) for v in ls["packets_dropped"]]
            lr.packets_lost[:] = [int(v) for v in ls["packets_lost"]]
            lr.packets_corrupted[:] = [int(v) for v in ls["packets_corrupted"]]
            lr.failed = bool(ls["failed"])
            lr.loss_prob = float(ls["loss_prob"])
            lr.corrupt_prob = float(ls["corrupt_prob"])
            lr._rng.bit_generator.state = ls["rng"]
            if ls["fault_rng"] is not None:
                # Vessel generator, never drawn from: its state is
                # overwritten on the next line (no new seeded stream).
                gen = np.random.Generator(type(lr._rng.bit_generator)())
                gen.bit_generator.state = ls["fault_rng"]
                lr._fault_rng = gen
            else:
                lr._fault_rng = None
        sim_state = state["sim"]
        counters = self.sim.counters
        values = sim_state["counters"]
        counters.packets_sent = int(values["sent"])
        counters.packets_delivered = int(values["delivered"])
        counters.packets_dropped_queue = int(values["dropped_queue"])
        counters.packets_dropped_ttl = int(values["dropped_ttl"])
        counters.packets_unroutable = int(values["unroutable"])
        self.sim.node_packets[:] = np.asarray(
            sim_state["node_packets"], dtype=np.int64
        )
        self.sim._down_nodes = set(int(n) for n in sim_state["down_nodes"])
        self.sim.dropped_fault = int(sim_state["dropped_fault"])
        self.recorder.records[:] = [
            tuple(rec) for rec in state["collect"]["log"]
        ]
        # Re-derive the forwarding plane from the captured down sets:
        # the fresh build starts all-up, and routing state is a pure
        # function of the up/down topology.
        for link_id, lr in enumerate(self.sim.links):
            if lr.failed:
                self.fib.set_link_state(link_id, False)
        for node in sorted(self.sim._down_nodes):
            self.fib.set_node_state(int(node), False)
        inj = state["injector"]
        if inj is not None and self.injector is not None:
            counts = self.injector.counts
            values = inj["counts"]
            counts.injected = int(values["injected"])
            counts.link_transitions = int(values["link_transitions"])
            counts.router_transitions = int(values["router_transitions"])
            counts.loss_transitions = int(values["loss_transitions"])
            counts.lp_transitions = int(values["lp_transitions"])
            counts.bgp_resets = int(values["bgp_resets"])
            counts.bgp_reestablished = int(values["bgp_reestablished"])
            counts.bgp_gave_up = int(values["bgp_gave_up"])
            self.injector.links_down = set(int(v) for v in inj["links_down"])
            self.injector.nodes_down = set(int(v) for v in inj["nodes_down"])
            self.injector.slowdown_spans = [
                tuple(span) for span in inj["slowdown_spans"]
            ]
            self.injector._open_slowdowns = {
                int(lp): (float(t0), float(factor))
                for lp, t0, factor in inj["open_slowdowns"]
            }
            if self.tracer is not None:
                self.tracer.faults.clear()
                self.tracer.faults.extend(inj["faults"])


class ShardCollector:
    """Bound-method ``collect()`` target assembling one shard's results.

    Traffic counters, per-node packet counts, and link-loss totals are
    *partial* on a shard (each event executes on exactly one owner) and
    sum across shards; fault data is reported by the control shard only
    (replica replays apply the same mutations but their records are
    copies, not new ground truth).
    """

    def __init__(
        self,
        engine: Any,
        sim: NetworkSimulator,
        recorder: DeliveryRecorder,
        injector: FaultInjector | None = None,
        tracer: TraceBuffer | None = None,
    ) -> None:
        self.engine = engine
        self.sim = sim
        self.recorder = recorder
        self.injector = injector
        self.tracer = tracer

    def collect(self) -> dict[str, Any]:
        """Picklable per-shard result for the controller to merge."""
        out: dict[str, Any] = {
            "log": list(self.recorder.records),
            "counters": self.sim.counters.as_dict(),
            "node_packets": self.sim.node_packets.tolist(),
            "dropped_fault": int(self.sim.dropped_fault),
            "link_lost": [int(lr.total_lost) for lr in self.sim.links],
            "events_executed": int(self.engine.events_executed),
        }
        if getattr(self.engine, "has_control", True) and self.injector is not None:
            out["faults"] = list(self.tracer.faults) if self.tracer else []
            out["fault_counts"] = self.injector.counts.as_dict()
            out["schedule_digest"] = self.injector.schedule.digest()
        return out


# ----------------------------------------------------------------------
# Builders (module-level, resolved by name inside worker processes)
# ----------------------------------------------------------------------
def _install_faults(
    engine: Any, sim: NetworkSimulator, fib: ForwardingPlane, params: dict
) -> tuple[FaultInjector | None, TraceBuffer | None]:
    events = params.get("faults")
    if not events:
        return None, None
    # Replica (non-control) shards replay every fault application, so
    # their faults.* counters would N-count in a merged snapshot; give
    # them a private disabled registry instead. The control shard (and
    # the single-process reference, which is its own control shard)
    # records into the process-global registry like any instrumented run.
    registry = None if getattr(engine, "has_control", True) else Registry()
    injector = FaultInjector(
        sim, fib, FaultSchedule.from_events(list(events)), registry=registry
    )
    # Private per-shard trace buffer: the process-global tracer would
    # interleave replica replays when several shards share one process
    # (LocalShardGroup); rebinding the injector's sink keeps each
    # shard's fault story separate. Only the control shard reports it.
    tracer = TraceBuffer(enabled=True)
    injector._trace = tracer
    injector.install(engine)
    return injector, tracer


def build_chain_scenario(engine: Any, params: dict) -> ShardScenario:
    """The differential-determinism chain workload, shard-replayable.

    ``params``: ``num_nodes`` (chain length), ``latency_s`` (every hop;
    also the lookahead), ``packets``, ``seed``, ``inject_window_s``
    (injection time range), and optional ``faults`` (a list of
    :class:`FaultEvent`). Packets alternate end-to-end directions with
    explicit flow ids, exactly the workload
    ``tests/test_differential_determinism.py`` pins.
    """
    num_nodes = int(params["num_nodes"])
    latency_s = float(params["latency_s"])
    net = Network()
    for _ in range(num_nodes):
        net.add_node(NodeKind.ROUTER)
    for u in range(num_nodes - 1):
        net.add_link(u, u + 1, 1e9, latency_s, 1 << 26)
    fib = ForwardingPlane(net)
    sim = NetworkSimulator(net, fib, engine)
    recorder = DeliveryRecorder(sim, engine)
    injector, tracer = _install_faults(engine, sim, fib, params)
    rng = np.random.default_rng(int(params.get("seed", 7)))
    packets = int(params.get("packets", 40))
    window = float(params.get("inject_window_s", 0.01))
    times = np.sort(rng.uniform(0.0, window, size=packets)).tolist()
    for i, t in enumerate(times):
        src, dst = (0, num_nodes - 1) if i % 2 == 0 else (num_nodes - 1, 0)
        packet = Packet(
            src=src, dst=dst, size_bytes=1000, protocol=Protocol.UDP,
            flow_id=i, seq=i,
        )
        engine.schedule_at(t, sim.inject, node=src, args=(packet,))
    collector = ShardCollector(engine, sim, recorder, injector, tracer)
    port = LpStatePort(sim, getattr(engine, "assignment", np.zeros(1, dtype=np.int64)))
    ckpt = ShardCheckpointPort(
        engine, sim, fib, recorder, port, collector, injector, tracer
    )
    handlers = {"handle_at": sim._handle_at, "inject": sim.inject}
    if injector is not None:
        # Pending fault applications must survive a checkpoint round
        # trip, so the injector's apply method needs a wire name.
        handlers["fault_apply"] = injector._apply
    return ShardScenario(
        handlers=handlers,
        collect=collector.collect,
        capture_lp=port.capture,
        restore_lp=port.restore,
        capture_shard=ckpt.capture,
        restore_shard=ckpt.restore,
    )


def build_udp_scenario(engine: Any, params: dict) -> ShardScenario:
    """Seeded UDP background traffic over a serialized topology.

    ``params``: ``network_doc`` (:func:`repro.serialization
    .network_to_dict` output — workers rebuild the identical topology
    without regenerating it), ``packets``, ``seed``, ``duration_s``,
    optional ``faults`` and ``record_deliveries`` (default True; large
    runs can drop the log and keep counters only). ``hot_fraction`` > 0
    skews traffic: that fraction of packets is redrawn inside the first
    ``hot_span`` nodes (default a quarter of the network), producing the
    concentrated load the online re-balancer exists to fix.
    ``flow_fraction`` > 0 additionally pins that fraction of packets to
    the single ``flow_src -> flow_dst`` pair — a point-to-point elephant
    flow, the knob bench workloads use to put heavy mail on a specific
    LP boundary. With both knobs at 0.0 the packet stream is
    draw-for-draw identical to builds that predate them.
    ``chain_injects`` switches from scheduling the whole trace upfront
    to per-node streaming (same draws, same traffic) so pending queues
    — and therefore live-migration payloads — stay O(in-flight).
    """
    net = network_from_dict(params["network_doc"])
    fib = ForwardingPlane(net)
    sim = NetworkSimulator(net, fib, engine)
    recorder = DeliveryRecorder(sim, engine)
    if not params.get("record_deliveries", True):
        sim._deliver = recorder.inner  # keep counters, skip the log
    injector, tracer = _install_faults(engine, sim, fib, params)
    rng = np.random.default_rng(int(params.get("seed", 0)))
    packets = int(params.get("packets", 500))
    duration_s = float(params["duration_s"])
    times = np.sort(rng.uniform(0.0, 0.8 * duration_s, size=packets))
    pairs = rng.integers(0, net.num_nodes, size=(packets, 2))
    hot = float(params.get("hot_fraction", 0.0))
    if hot > 0.0:
        hot_span = int(params.get("hot_span") or max(2, net.num_nodes // 4))
        flags = rng.random(packets) < hot
        hot_pairs = rng.integers(0, hot_span, size=(packets, 2))
        pairs = np.where(flags[:, None], hot_pairs, pairs)
    flow = float(params.get("flow_fraction", 0.0))
    if flow > 0.0:
        flow_pair = np.asarray(
            [int(params["flow_src"]), int(params["flow_dst"])], dtype=pairs.dtype
        )
        flow_flags = rng.random(packets) < flow
        pairs = np.where(flow_flags[:, None], flow_pair[None, :], pairs)
    def _packet(i: int) -> Packet:
        src = int(pairs[i, 0])
        dst = int(pairs[i, 1])
        if dst == src:
            dst = (src + 1) % net.num_nodes
        return Packet(
            src=src, dst=dst, size_bytes=1000, protocol=Protocol.UDP,
            flow_id=i, seq=i,
        )

    handlers = {"handle_at": sim._handle_at, "inject": sim.inject}
    if params.get("chain_injects"):
        # Stream the offered load: each node's inject schedules that
        # node's next one, so pending queues hold O(in-flight) work
        # instead of the whole trace. Live LP migration drains the
        # queue into the payload, so chained injection is what keeps a
        # mid-run move (and its barrier pause) cheap. The traffic is
        # draw-for-draw identical to the upfront schedule below — only
        # the scheduling structure differs.
        by_node: dict[int, list[int]] = {}
        for i in range(packets):
            by_node.setdefault(int(pairs[i, 0]), []).append(i)

        def inject_next(src: int, k: int) -> None:
            idxs = by_node[src]
            sim.inject(_packet(idxs[k]))
            if k + 1 < len(idxs):
                engine.schedule_at(
                    float(times[idxs[k + 1]]), inject_next,
                    node=src, args=(src, k + 1),
                )

        handlers["inject_next"] = inject_next
        for src in sorted(by_node):
            engine.schedule_at(
                float(times[by_node[src][0]]), inject_next,
                node=src, args=(src, 0),
            )
    else:
        for i in range(packets):
            packet = _packet(i)
            engine.schedule_at(
                float(times[i]), sim.inject, node=packet.src, args=(packet,)
            )
    collector = ShardCollector(engine, sim, recorder, injector, tracer)
    port = LpStatePort(sim, getattr(engine, "assignment", np.zeros(1, dtype=np.int64)))
    ckpt = ShardCheckpointPort(
        engine, sim, fib, recorder, port, collector, injector, tracer
    )
    if injector is not None:
        handlers["fault_apply"] = injector._apply
    return ShardScenario(
        handlers=handlers,
        collect=collector.collect,
        capture_lp=port.capture,
        restore_lp=port.restore,
        capture_shard=ckpt.capture,
        restore_shard=ckpt.restore,
    )


def chain_spec(
    num_nodes: int = 8,
    latency_s: float = 1e-4,
    packets: int = 40,
    seed: int = 7,
    faults: list | None = None,
) -> ScenarioSpec:
    """Spec for :func:`build_chain_scenario`."""
    params: dict[str, Any] = {
        "num_nodes": num_nodes,
        "latency_s": latency_s,
        "packets": packets,
        "seed": seed,
    }
    if faults:
        params["faults"] = list(faults)
    return ScenarioSpec(
        builder="repro.experiments.shard:build_chain_scenario", params=params
    )


def udp_spec(
    net: Network,
    duration_s: float,
    packets: int = 500,
    seed: int = 0,
    record_deliveries: bool = True,
    faults: list | None = None,
    hot_fraction: float = 0.0,
    hot_span: int | None = None,
    flow_fraction: float = 0.0,
    flow_src: int = 0,
    flow_dst: int = 1,
    chain_injects: bool = False,
) -> ScenarioSpec:
    """Spec for :func:`build_udp_scenario` over an already-built net."""
    params: dict[str, Any] = {
        "network_doc": network_to_dict(net),
        "duration_s": duration_s,
        "packets": packets,
        "seed": seed,
        "record_deliveries": record_deliveries,
    }
    if faults:
        params["faults"] = list(faults)
    if hot_fraction > 0.0:
        params["hot_fraction"] = float(hot_fraction)
        if hot_span is not None:
            params["hot_span"] = int(hot_span)
    if flow_fraction > 0.0:
        params["flow_fraction"] = float(flow_fraction)
        params["flow_src"] = int(flow_src)
        params["flow_dst"] = int(flow_dst)
    if chain_injects:
        params["chain_injects"] = True
    return ScenarioSpec(
        builder="repro.experiments.shard:build_udp_scenario", params=params
    )


# ----------------------------------------------------------------------
# Reference execution and merging
# ----------------------------------------------------------------------
def run_reference(
    spec: ScenarioSpec,
    assignment,
    num_lps: int,
    lookahead: float,
    until: float,
    queue: str = "adaptive",
    strict: bool = True,
) -> tuple[ConservativeEngine, dict[str, Any]]:
    """Run ``spec`` on the single-process conservative engine.

    The differential baseline: the same builder drives a
    :class:`ConservativeEngine` (which owns every LP, so it is its own
    control shard) and the returned ``collect()`` dict is directly
    comparable to :func:`merge_collected` over a multi-process run.
    """
    engine = ConservativeEngine(
        assignment, num_lps, lookahead, strict=strict, queue=queue
    )
    scenario = _resolve_builder(spec.builder)(engine, spec.params)
    engine.run(until=until)
    collected = scenario.collect() if scenario.collect is not None else None
    return engine, collected


_SUMMED_KEYS = ("dropped_fault", "events_executed")
_CONTROL_KEYS = ("faults", "fault_counts", "schedule_digest")


def merge_collected(collected: list[dict[str, Any] | None]) -> dict[str, Any]:
    """Merge per-shard :class:`ShardCollector` dicts into reference shape.

    Logs concatenate and stable-sort on the execution cursor (exact
    single-process order — see :class:`DeliveryRecorder`); counters,
    per-node packets, link losses, and scalar counts sum; control-plane
    fields pass through from the (single) shard that reported them.
    """
    parts = [c for c in collected if c is not None]
    if not parts:
        raise ValueError("nothing to merge: no shard returned a collection")
    merged: dict[str, Any] = {}
    log: list[tuple] = []
    for part in parts:
        log.extend(tuple(rec) for rec in part["log"])
    log.sort(key=_cursor_key)
    merged["log"] = log
    counters: dict[str, int] = {}
    for part in parts:
        for key, value in sorted(part["counters"].items()):
            counters[key] = counters.get(key, 0) + int(value)
    merged["counters"] = counters
    node_packets = np.zeros(len(parts[0]["node_packets"]), dtype=np.int64)
    link_lost = np.zeros(len(parts[0]["link_lost"]), dtype=np.int64)
    for part in parts:
        node_packets += np.asarray(part["node_packets"], dtype=np.int64)
        link_lost += np.asarray(part["link_lost"], dtype=np.int64)
    merged["node_packets"] = node_packets.tolist()
    merged["link_lost"] = link_lost.tolist()
    for key in _SUMMED_KEYS:
        merged[key] = sum(int(part.get(key, 0)) for part in parts)
    for part in parts:
        for key in _CONTROL_KEYS:
            if key in part:
                merged[key] = part[key]
    return merged


def _cursor_key(record: tuple) -> tuple[int, int]:
    return (record[0], record[1])


def delivery_log_bytes(collected: dict[str, Any]) -> bytes:
    """Canonical byte encoding of a delivery log (cursor stripped).

    The cursor pair is an execution-side merge key, not an observable
    outcome, so byte comparisons cover ``(time, node, flow_id, seq)``
    only — the single-process engines tag a constant cursor and would
    otherwise trivially differ.
    """
    lines = [repr(rec[2:]).encode() for rec in collected["log"]]
    return b"\n".join(lines)
