"""Experiment driver: reproduce the paper's evaluation figures.

One experiment = (network kind, application) pair. The driver

1. generates the network (single-AS flat / multi-AS maBrite + BGP),
2. runs a short profiling simulation (the PROF bootstrap),
3. runs the measured simulation once, recording the event trace and the
   per-hop transmissions,
4. maps the network with each approach and evaluates every mapping
   against the recorded run with the cluster cost model:
   simulation time T, achieved MLL, measured load imbalance, and
   parallel efficiency — the paper's four metrics (Figures 6-13).

Step 4 is sound because the virtual network's behavior is independent of
the mapping; only the parallel execution cost differs (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.syncmodel import ClusterSpec, teragrid_cluster
from ..core.approaches import Approach
from ..core.mapping import MappingPipeline, NetworkMapping, run_profiling_simulation
from ..engine.costmodel import (
    WallclockPrediction,
    predict_from_trace,
    sequential_time_estimate,
    window_for_mapping,
)
from ..engine.kernel import SimKernel
from ..metrics.efficiency import parallel_efficiency
from ..metrics.loadbalance import load_imbalance
from ..netsim.simulator import NetworkSimulator
from ..obs import export as obs_export
from ..obs.registry import observed_run
from ..obs.timers import Stopwatch
from ..online.agent import Agent
from ..profilers.traffic import TrafficProfile
from ..routing.bgp.config import configure_bgp
from ..routing.fib import ForwardingPlane
from ..topology.brite import generate_flat_network
from ..topology.mabrite import generate_multi_as_network
from ..topology.models import Network
from .config import ExperimentScale, default_scale
from .workloads import WorkloadHandles, install_workload

__all__ = [
    "cluster_for_scale",
    "ApproachRow",
    "ExperimentResult",
    "build_network",
    "run_workload_simulation",
    "evaluate_mappings",
    "run_experiment",
    "DEFAULT_APPROACHES",
]

#: The four approaches of Figures 6/8/9/10/12/13 (TOP/PROF appear only in
#: the MLL figures, where their tiny MLL explains their exclusion).
DEFAULT_APPROACHES = [Approach.HPROF, Approach.PROF2, Approach.HTOP, Approach.TOP2]


def cluster_for_scale(scale: ExperimentScale) -> ClusterSpec:
    """The TeraGrid cluster with the scale's engine-speed calibration."""
    from dataclasses import replace

    return replace(
        teragrid_cluster(scale.num_engines),
        event_cost_s=scale.event_cost_s,
        remote_event_cost_s=scale.remote_event_cost_s,
    )


@dataclass(frozen=True)
class ApproachRow:
    """One bar of a paper figure: all metrics for one mapping approach."""

    approach: Approach
    sim_time_s: float
    achieved_mll_ms: float
    measured_imbalance: float
    parallel_eff: float
    prediction: WallclockPrediction
    mapping: NetworkMapping

    def as_dict(self) -> dict[str, float | str]:
        """The row as plain values (serialization and table rendering)."""
        return {
            "approach": self.approach.value,
            "sim_time_s": self.sim_time_s,
            "achieved_mll_ms": self.achieved_mll_ms,
            "load_imbalance": self.measured_imbalance,
            "parallel_efficiency": self.parallel_eff,
        }


@dataclass
class ExperimentResult:
    """All rows of one (network, application) experiment."""

    network_kind: str
    app_kind: str
    scale_name: str
    num_engines: int
    total_events: int
    duration_s: float
    rows: list[ApproachRow] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: workload health of the measured run
    http_responses: int = 0
    apps_finished: bool = False

    def row(self, approach: Approach) -> ApproachRow:
        """The row for ``approach`` (KeyError if absent)."""
        for r in self.rows:
            if r.approach is approach:
                return r
        raise KeyError(f"no row for {approach}")

    def metric(self, approach: Approach, name: str) -> float:
        """One metric value by approach and metric key."""
        return float(self.row(approach).as_dict()[name])


# ----------------------------------------------------------------------
def build_network(
    network_kind: str, scale: ExperimentScale, seed: int = 0
) -> tuple[Network, ForwardingPlane]:
    """Generate the experiment network and its forwarding plane."""
    if network_kind == "single-as":
        net = generate_flat_network(
            num_routers=scale.flat_routers, num_hosts=scale.flat_hosts, seed=seed
        )
        return net, ForwardingPlane(net)
    if network_kind == "multi-as":
        net = generate_multi_as_network(
            num_ases=scale.num_ases,
            routers_per_as=scale.routers_per_as,
            num_hosts=scale.multi_hosts,
            seed=seed,
        )
        bgp = configure_bgp(net)
        return net, ForwardingPlane(net, bgp)
    raise ValueError(f"unknown network kind {network_kind!r}")


def run_workload_simulation(
    net: Network,
    fib: ForwardingPlane,
    app_kind: str,
    scale: ExperimentScale,
    duration_s: float,
    seed: int = 0,
) -> tuple[SimKernel, NetworkSimulator, WorkloadHandles]:
    """Run the measured simulation with trace + transmission recording."""
    kernel = SimKernel(record_trace=True)
    sim = NetworkSimulator(net, fib, kernel, record_transmissions=True)
    agent = Agent(sim)
    handles = install_workload(sim, agent, net, app_kind, scale, seed, duration_s)
    kernel.run(until=duration_s)
    return kernel, sim, handles


def evaluate_mappings(
    kernel: SimKernel,
    sim: NetworkSimulator,
    mappings: dict[Approach, NetworkMapping],
    cluster: ClusterSpec,
    num_engines: int,
    duration_s: float,
) -> list[ApproachRow]:
    """Score each mapping against the recorded run (the paper's metrics)."""
    times, nodes = kernel.trace()
    tx_t, tx_f, tx_to = sim.transmissions()
    rows: list[ApproachRow] = []
    tseq = sequential_time_estimate(len(times), cluster)
    for approach, mapping in mappings.items():
        window = window_for_mapping(mapping.achieved_mll_s, duration_s)
        pred = predict_from_trace(
            times,
            nodes,
            mapping.assignment,
            num_engines,
            window,
            duration_s,
            cluster,
            tx_t,
            tx_f,
            tx_to,
        )
        imbalance = load_imbalance(pred.events_per_lp / duration_s)
        pe = parallel_efficiency(tseq, num_engines, pred.total_s)
        rows.append(
            ApproachRow(
                approach=approach,
                sim_time_s=pred.total_s,
                achieved_mll_ms=mapping.achieved_mll_ms,
                measured_imbalance=imbalance,
                parallel_eff=pe,
                prediction=pred,
                mapping=mapping,
            )
        )
    return rows


def run_experiment(
    network_kind: str,
    app_kind: str,
    approaches: list[Approach] | None = None,
    scale: ExperimentScale | None = None,
    seed: int = 0,
    obs_out: str | None = None,
) -> ExperimentResult:
    """End-to-end experiment for one (network, application) pair.

    With ``obs_out`` set, the measured run executes under an enabled
    observability registry and its snapshot (counters, per-node/per-link
    vectors, the Figure 3 rate series) is written to that path as JSON —
    the ``--obs-out`` plumbing the benchmarks expose.
    """
    watch = Stopwatch()
    scale = scale if scale is not None else default_scale()
    approaches = approaches if approaches is not None else list(DEFAULT_APPROACHES)

    net, fib = build_network(network_kind, scale, seed)

    def profile_setup(sim: NetworkSimulator, agent: Agent) -> None:
        install_workload(
            sim, agent, net, app_kind, scale, seed, duration_s=scale.profile_duration_s
        )

    profile: TrafficProfile | None = None
    if any(a.uses_profile for a in approaches):
        profile = run_profiling_simulation(net, fib, profile_setup, scale.profile_duration_s)

    if obs_out is not None:
        with observed_run() as reg:
            kernel, sim, handles = run_workload_simulation(
                net, fib, app_kind, scale, scale.duration_s, seed
            )
        obs_export.write_snapshot(
            obs_out,
            reg,
            meta={
                "network": network_kind,
                "app": app_kind,
                "scale": scale.name,
                "seed": seed,
                "duration_s": scale.duration_s,
            },
        )
    else:
        kernel, sim, handles = run_workload_simulation(
            net, fib, app_kind, scale, scale.duration_s, seed
        )

    cluster = cluster_for_scale(scale)
    pipeline = MappingPipeline(net, scale.num_engines, cluster, seed)
    mappings = pipeline.run_all(approaches, profile)
    rows = evaluate_mappings(
        kernel, sim, mappings, cluster, scale.num_engines, scale.duration_s
    )

    return ExperimentResult(
        network_kind=network_kind,
        app_kind=app_kind,
        scale_name=scale.name,
        num_engines=scale.num_engines,
        total_events=kernel.events_executed,
        duration_s=scale.duration_s,
        rows=rows,
        wall_seconds=watch.elapsed(),
        http_responses=handles.http.stats.responses_completed,
        apps_finished=handles.apps_finished,
    )
