"""Multi-seed aggregation: mean +- std of every metric per approach.

The paper reports single runs; robustness of the reproduced orderings is
easier to argue over seeds. :func:`run_seed_sweep` repeats one experiment
over several topology/workload seeds and :func:`aggregate_results`
reduces any collection of results to per-approach statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.approaches import Approach
from .config import ExperimentScale
from .report import FIGURE_METRICS
from .runner import ExperimentResult, run_experiment

__all__ = ["MetricStats", "aggregate_results", "run_seed_sweep", "format_aggregate"]


@dataclass(frozen=True)
class MetricStats:
    """Mean/std/min/max of one metric for one approach over several runs."""

    approach: Approach
    metric: str
    mean: float
    std: float
    min: float
    max: float
    count: int


def aggregate_results(results: list[ExperimentResult]) -> list[MetricStats]:
    """Per-(approach, metric) statistics across experiment results.

    Results may differ in seed (a seed sweep) or in workload (pooled
    view); every approach present in *all* results is aggregated.
    """
    if not results:
        raise ValueError("need at least one result")
    approaches = set(r.approach for r in results[0].rows)
    for res in results[1:]:
        approaches &= {r.approach for r in res.rows}
    stats: list[MetricStats] = []
    for approach in sorted(approaches, key=lambda a: a.value):
        for metric in FIGURE_METRICS:
            values = np.array([res.metric(approach, metric) for res in results])
            stats.append(
                MetricStats(
                    approach=approach,
                    metric=metric,
                    mean=float(values.mean()),
                    std=float(values.std()),
                    min=float(values.min()),
                    max=float(values.max()),
                    count=len(values),
                )
            )
    return stats


def run_seed_sweep(
    network_kind: str,
    app_kind: str,
    seeds: list[int],
    approaches: list[Approach] | None = None,
    scale: ExperimentScale | None = None,
) -> list[ExperimentResult]:
    """Run the same experiment over several seeds."""
    if not seeds:
        raise ValueError("need at least one seed")
    return [
        run_experiment(network_kind, app_kind, approaches=approaches, scale=scale, seed=s)
        for s in seeds
    ]


def format_aggregate(stats: list[MetricStats]) -> str:
    """Render aggregated statistics as a metric-major table."""
    lines: list[str] = []
    for metric in FIGURE_METRICS:
        rows = [s for s in stats if s.metric == metric]
        if not rows:
            continue
        name, unit, _ = FIGURE_METRICS[metric]
        lines.append(f"{name}" + (f" ({unit})" if unit else "")
                     + f" over {rows[0].count} runs")
        lines.append(f"{'approach':<8}{'mean':>12}{'std':>10}{'min':>10}{'max':>10}")
        for s in rows:
            lines.append(
                f"{s.approach.value:<8}{s.mean:>12.3f}{s.std:>10.3f}"
                f"{s.min:>10.3f}{s.max:>10.3f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
