"""Chaos experiment: one seeded fault scenario, end to end.

Runs a workload simulation with a :class:`~repro.faults.FaultSchedule`
installed, under enabled observability, and reports what broke, what
recovered, and whether the run *converged back*: OSPF recomputed routes,
every BGP session re-established, no link or router left down. This is
the executable form of the paper's online-routing robustness story —
the simulated network reacts to failures the way an operational network
does, with the same protocols doing the recovering.

Determinism contract: the same ``(scenario, seed)`` pair produces the
same fault schedule (:meth:`FaultSchedule.digest`), the same fault
trace (:attr:`ChaosResult.fault_trace_digest`), and the same delivery
counters, on every queue backend.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..engine.kernel import SimKernel
from ..faults.injector import FaultCounts, FaultInjector
from ..faults.schedule import FaultScenario, FaultSchedule
from ..netsim.simulator import NetworkSimulator
from ..obs import export as obs_export
from ..obs.registry import observed_run
from ..obs.trace import FaultRecord, traced_run
from ..online.agent import Agent
from ..routing.bgp.session import BgpSessionManager, SessionStats
from .config import ExperimentScale, default_scale
from .runner import build_network
from .workloads import install_workload

__all__ = [
    "ChaosResult",
    "ProcessChaosResult",
    "run_chaos_experiment",
    "run_process_chaos",
    "format_chaos_report",
    "format_process_chaos_report",
]


@dataclass
class ChaosResult:
    """Everything a chaos run reports."""

    scenario: str
    seed: int
    duration_s: float
    schedule_digest: str
    num_fault_events: int
    counts: FaultCounts
    #: TrafficCounters.as_dict() plus the fault-drop accounting
    traffic: dict[str, int]
    dropped_fault: int
    packets_lost: int
    packets_corrupted: int
    #: OSPF re-convergence counters (invalidations, trees_built)
    route_recompute: dict[str, int]
    #: BGP session lifecycle stats (None on single-AS networks)
    bgp: SessionStats | None
    #: the faults trace channel, in order
    fault_records: list[FaultRecord] = field(default_factory=list)
    fault_trace_digest: str = ""
    #: recovery verdict components
    links_restored: bool = True
    routers_restored: bool = True
    sessions_recovered: bool = True
    routes_recomputed: bool = True

    @property
    def recovered(self) -> bool:
        """True when every degradation the schedule injected healed."""
        return (
            self.links_restored
            and self.routers_restored
            and self.sessions_recovered
            and self.routes_recomputed
        )


def _fault_trace_digest(records: list[FaultRecord]) -> str:
    h = hashlib.sha256()
    for r in records:
        detail = ",".join(f"{k}={r.detail[k]!r}" for k in sorted(r.detail))
        h.update(f"{r.time!r}|{r.kind}|{r.phase}|{r.target}|{detail};".encode())
    return h.hexdigest()


def run_chaos_experiment(
    network_kind: str,
    app_kind: str,
    scenario: FaultScenario,
    scale: ExperimentScale | None = None,
    seed: int = 0,
    duration_s: float | None = None,
    schedule: FaultSchedule | None = None,
    obs_out: str | None = None,
    queue_backend: str = "adaptive",
) -> ChaosResult:
    """Run one workload under one fault scenario and report recovery.

    ``schedule`` overrides the seeded scenario materialization (tests
    hand-build schedules); ``obs_out`` writes the observability snapshot
    of the run as JSON, as the other experiment entry points do.
    """
    scale = scale if scale is not None else default_scale()
    duration = duration_s if duration_s is not None else scale.duration_s

    net, fib = build_network(network_kind, scale, seed)
    if schedule is None:
        schedule = FaultSchedule.from_scenario(scenario, net, seed)

    with observed_run() as reg, traced_run() as tracer:
        kernel = SimKernel(queue=queue_backend)
        sim = NetworkSimulator(net, fib, kernel)
        agent = Agent(sim)
        sessions: BgpSessionManager | None = None
        if fib.bgp is not None:
            sessions = BgpSessionManager(fib.bgp, kernel, seed=seed)
        injector = FaultInjector(sim, fib, schedule, sessions=sessions)
        injector.install(kernel)
        install_workload(sim, agent, net, app_kind, scale, seed, duration)
        kernel.run(until=duration)
        fault_records = list(tracer.faults)
        if obs_out is not None:
            obs_export.write_snapshot(
                obs_out,
                reg,
                meta={
                    "network": network_kind,
                    "app": app_kind,
                    "scenario": scenario.name,
                    "seed": seed,
                    "duration_s": duration,
                    "schedule_digest": schedule.digest(),
                },
            )

    counts = injector.counts
    recompute = fib.route_recompute_stats()
    had_topology_faults = counts.link_transitions + counts.router_transitions > 0
    return ChaosResult(
        scenario=scenario.name,
        seed=seed,
        duration_s=duration,
        schedule_digest=schedule.digest(),
        num_fault_events=len(schedule),
        counts=counts,
        traffic=sim.counters.as_dict(),
        dropped_fault=sim.dropped_fault,
        packets_lost=sum(lr.total_lost for lr in sim.links),
        packets_corrupted=sum(lr.total_corrupted for lr in sim.links),
        route_recompute=recompute,
        bgp=sessions.stats if sessions is not None else None,
        fault_records=fault_records,
        fault_trace_digest=_fault_trace_digest(fault_records),
        links_restored=not injector.links_down,
        routers_restored=not injector.nodes_down,
        sessions_recovered=(
            sessions is None
            or (sessions.all_established() and sessions.stats.gave_up == 0)
        ),
        routes_recomputed=(not had_topology_faults) or recompute["invalidations"] > 0,
    )


@dataclass
class ProcessChaosResult:
    """A process-level chaos run: kill workers, demand byte-identity.

    Where :class:`ChaosResult` reports whether the *simulated network*
    healed, this reports whether the *simulator* healed: a seeded
    :class:`~repro.faults.plan.FaultPlan` SIGKILLs worker processes at
    random barrier windows, the recovery ladder (checkpoint restore +
    respawn, then survivor adoption) masks the crashes, and the verdict
    compares the multi-process delivery log byte-for-byte against an
    uninterrupted single-process reference of the same seeded workload.
    """

    network: str
    procs: int
    seed: int
    duration_s: float
    kills: int
    on_worker_loss: str
    plan_digest: str
    #: canonical one-line forms of the planned faults, in plan order
    fault_lines: list[str]
    #: the run's recovery summary (None when the run aborted)
    recovery: dict | None
    byte_identical: bool
    counters_match: bool
    error: str | None = None

    @property
    def degraded(self) -> bool:
        """True when a survivor had to adopt a dead shard's LPs."""
        return bool(self.recovery and self.recovery["adoptions"])

    @property
    def recovered(self) -> bool:
        """Fully healed: byte-identical output with every shard respawned."""
        return (
            self.error is None
            and self.byte_identical
            and self.counters_match
            and not self.degraded
        )


def run_process_chaos(
    network_kind: str,
    scale: ExperimentScale | None = None,
    seed: int = 0,
    kills: int = 2,
    procs: int = 2,
    on_worker_loss: str = "respawn",
    checkpoint_every: int = 8,
    max_respawns: int = 2,
    duration_s: float | None = None,
    start_method: str = "fork",
) -> ProcessChaosResult:
    """Kill ``kills`` workers at seeded random windows; verify recovery.

    The packet-mediated UDP workload (the only workload that shards —
    see :mod:`repro.experiments.shard`) runs once on the single-process
    engine (ground truth) and once on the multi-process backend with a
    seeded :meth:`FaultPlan.random_kills` plan plus barrier
    checkpointing. The verdict is RECOVERED when the crashed run's
    delivery log and traffic counters byte-match the uninterrupted
    reference with every shard respawned, DEGRADED when a survivor had
    to adopt a dead shard (output still byte-identical), FAILED on
    divergence or an exhausted recovery ladder.
    """
    from ..core.approaches import Approach
    from ..engine.costmodel import window_for_mapping
    from ..engine.parallel import ParallelConservativeEngine, RecoveryExhaustedError
    from ..engine.recovery import RecoveryConfig
    from ..engine.windows import iter_windows
    from ..faults.plan import FaultPlan
    from .runner import MappingPipeline, cluster_for_scale
    from .shard import delivery_log_bytes, merge_collected, run_reference, udp_spec

    scale = scale if scale is not None else default_scale()
    duration = duration_s if duration_s is not None else scale.profile_duration_s
    net, _fib = build_network(network_kind, scale, seed)
    cluster = cluster_for_scale(scale)
    pipeline = MappingPipeline(net, scale.num_engines, cluster, seed)
    mapping = pipeline.run_all([Approach.TOP])[Approach.TOP]
    lookahead = window_for_mapping(mapping.achieved_mll_s, duration)
    num_windows = sum(1 for _ in iter_windows(0.0, lookahead, duration))
    plan = FaultPlan.random_kills(num_windows, procs, kills=kills, seed=seed)
    spec = udp_spec(
        net, duration, packets=4 * scale.http_clients, seed=seed,
        record_deliveries=True,
    )
    _ref_engine, ref_collected = run_reference(
        spec, mapping.assignment, mapping.num_engines, lookahead, duration
    )
    recovery = RecoveryConfig(
        checkpoint_every_n_windows=checkpoint_every,
        max_respawns=max_respawns,
        on_worker_loss=on_worker_loss,
        fault_plan=plan,
    )
    engine = ParallelConservativeEngine(
        mapping.assignment,
        mapping.num_engines,
        lookahead,
        procs=procs,
        start_method=start_method,
        recovery=recovery,
    )
    base = dict(
        network=network_kind,
        procs=procs,
        seed=seed,
        duration_s=duration,
        kills=len(plan),
        on_worker_loss=on_worker_loss,
        plan_digest=plan.digest(),
        fault_lines=[pf.canonical() for pf in plan],
    )
    try:
        result = engine.run_scenario(spec, until=duration)
    except RecoveryExhaustedError as exc:
        return ProcessChaosResult(
            **base, recovery=None, byte_identical=False,
            counters_match=False, error=str(exc),
        )
    mp_collected = merge_collected(result.collected)
    return ProcessChaosResult(
        **base,
        recovery=result.recovery,
        byte_identical=(
            delivery_log_bytes(ref_collected) == delivery_log_bytes(mp_collected)
        ),
        counters_match=ref_collected["counters"] == mp_collected["counters"],
    )


def format_process_chaos_report(result: ProcessChaosResult) -> str:
    """Human-readable process-chaos report (``repro chaos --kill-workers``)."""
    lines = [
        f"process chaos  : {result.kills} worker kill(s) over {result.procs} "
        f"procs on {result.network} (seed {result.seed}, "
        f"{result.duration_s:g}s horizon, on-loss={result.on_worker_loss})",
        f"fault plan     : digest {result.plan_digest[:16]}",
    ]
    for line in result.fault_lines:
        window, shard, kind, incarnation, after = line.split("|")
        lines.append(
            f"  window {window} shard {shard} {kind} "
            f"(incarnation {incarnation}"
            + (", after send)" if after == "1" else ")")
        )
    if result.recovery is not None:
        r = result.recovery
        lines.append(
            f"recovery       : {r['detections']} detection(s), "
            f"{r['respawns']} respawn(s), {r['windows_replayed']} window(s) "
            f"replayed, {r['adoptions']} adoption(s); "
            f"{r['checkpoints_taken']} checkpoint(s), "
            f"{r['checkpoint_bytes']:,} bytes"
        )
        lines.append(
            "delivery log   : "
            + ("byte-identical to the 1-process reference"
               if result.byte_identical else "DIVERGED from the reference")
        )
    if result.recovered:
        verdict = "RECOVERED"
        detail = []
    elif result.error is not None:
        verdict = "FAILED"
        detail = [result.error]
    elif not result.byte_identical or not result.counters_match:
        verdict = "FAILED"
        detail = ["multi-process output diverged from the reference"]
    else:
        verdict = "DEGRADED"
        dead = result.recovery["dead_shards"]
        detail = [f"shard(s) {dead} adopted by survivors; "
                  f"output still byte-identical"]
    lines.append(
        f"verdict        : {verdict}" + (f" ({'; '.join(detail)})" if detail else "")
    )
    return "\n".join(lines)


def format_chaos_report(result: ChaosResult) -> str:
    """Human-readable chaos report (the ``repro chaos`` CLI output)."""
    lines = [
        f"chaos scenario : {result.scenario} (seed {result.seed}, "
        f"{result.duration_s:g}s horizon)",
        f"schedule       : {result.num_fault_events} events, "
        f"digest {result.schedule_digest[:16]}",
        f"fault trace    : {len(result.fault_records)} records, "
        f"digest {result.fault_trace_digest[:16]}",
        "injected       : "
        + ", ".join(f"{k}={v}" for k, v in result.counts.as_dict().items() if v),
        "traffic        : "
        + ", ".join(f"{k}={v}" for k, v in result.traffic.items())
        + f", dropped_fault={result.dropped_fault}"
        + f", lost={result.packets_lost}, corrupted={result.packets_corrupted}",
        f"ospf           : {result.route_recompute['invalidations']} invalidations, "
        f"{result.route_recompute['trees_built']} trees built",
    ]
    if result.bgp is not None:
        lines.append(
            "bgp sessions   : "
            + ", ".join(f"{k}={v}" for k, v in result.bgp.as_dict().items())
        )
    verdict = "RECOVERED" if result.recovered else "DEGRADED"
    detail = []
    if not result.links_restored:
        detail.append("links still down")
    if not result.routers_restored:
        detail.append("routers still down")
    if not result.sessions_recovered:
        detail.append("BGP sessions not re-established")
    if not result.routes_recomputed:
        detail.append("no route recomputation observed")
    lines.append(
        f"verdict        : {verdict}" + (f" ({'; '.join(detail)})" if detail else "")
    )
    return "\n".join(lines)
