"""Programmatic checks of the paper's headline claims.

Each claim is a named, directional comparison over experiment results;
:func:`evaluate_claims` returns structured verdicts a user (or the claims
benchmark, or the CLI) can render. This is the machine-checkable version
of EXPERIMENTS.md's tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.approaches import Approach
from .runner import ExperimentResult

__all__ = ["ClaimCheck", "evaluate_claims", "format_claims", "PAPER_CLAIMS"]


@dataclass(frozen=True)
class ClaimCheck:
    """Verdict for one claim on one experiment."""

    claim_id: str
    description: str
    experiment: str
    holds: bool
    measured: float
    paper_value: float | None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "PASS" if self.holds else "FAIL"
        return f"[{mark}] {self.claim_id} on {self.experiment}: {self.measured:+.1%}"


def _reduction(result: ExperimentResult, metric: str, better: Approach, worse: Approach) -> float:
    b = result.metric(better, metric)
    w = result.metric(worse, metric)
    return (w - b) / w if w else 0.0


def _claim_time(result: ExperimentResult) -> tuple[bool, float]:
    gain = _reduction(result, "sim_time_s", Approach.HPROF, Approach.TOP2)
    return gain > 0.0, gain


def _claim_imbalance(result: ExperimentResult) -> tuple[bool, float]:
    gain = _reduction(result, "load_imbalance", Approach.HPROF, Approach.HTOP)
    return gain > -0.10, gain  # HPROF no worse than HTOP (typically much better)


def _claim_mll(result: ExperimentResult) -> tuple[bool, float]:
    hier = result.metric(Approach.HPROF, "achieved_mll_ms")
    flat = result.metric(Approach.TOP2, "achieved_mll_ms")
    ratio = hier / flat if flat else float("inf")
    return ratio >= 1.0, ratio - 1.0


def _claim_pe(result: ExperimentResult) -> tuple[bool, float]:
    hprof = result.metric(Approach.HPROF, "parallel_efficiency")
    top2 = result.metric(Approach.TOP2, "parallel_efficiency")
    gain = hprof / top2 - 1.0 if top2 else 0.0
    return gain > 0.0, gain


#: claim id -> (description, paper value, evaluator)
PAPER_CLAIMS: dict[str, tuple[str, float | None, Callable]] = {
    "time-reduction": (
        "HPROF reduces simulation time vs TOP2 (paper: ~50%)",
        0.50,
        _claim_time,
    ),
    "imbalance-improvement": (
        "HPROF improves load imbalance vs HTOP (paper: ~40%)",
        0.40,
        _claim_imbalance,
    ),
    "mll-dominance": (
        "hierarchical MLL exceeds the flat tuned mapping's (paper: 5-10x)",
        None,
        _claim_mll,
    ),
    "efficiency-gain": (
        "HPROF parallel efficiency above TOP2 (paper: +64%)",
        0.64,
        _claim_pe,
    ),
}


def evaluate_claims(
    results: list[ExperimentResult],
    claim_ids: list[str] | None = None,
) -> list[ClaimCheck]:
    """Evaluate the selected claims on every result.

    Requires each result to carry HPROF/HTOP/TOP2 rows (the default
    approach set). Unknown claim ids raise ``KeyError``.
    """
    ids = claim_ids if claim_ids is not None else list(PAPER_CLAIMS)
    checks: list[ClaimCheck] = []
    for cid in ids:
        description, paper_value, evaluator = PAPER_CLAIMS[cid]
        for result in results:
            holds, measured = evaluator(result)
            checks.append(
                ClaimCheck(
                    claim_id=cid,
                    description=description,
                    experiment=f"{result.network_kind}/{result.app_kind}",
                    holds=holds,
                    measured=measured,
                    paper_value=paper_value,
                )
            )
    return checks


def format_claims(checks: list[ClaimCheck]) -> str:
    """Render verdicts grouped by claim."""
    lines: list[str] = []
    for cid in dict.fromkeys(c.claim_id for c in checks):
        group = [c for c in checks if c.claim_id == cid]
        lines.append(group[0].description)
        for c in group:
            mark = "PASS" if c.holds else "FAIL"
            paper = f" (paper {c.paper_value:+.0%})" if c.paper_value is not None else ""
            lines.append(
                f"  [{mark}] {c.experiment:<22} measured {c.measured:+7.1%}{paper}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
