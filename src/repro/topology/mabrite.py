"""maBrite: Internet-like multi-AS topology with realistic BGP structure.

Implements the paper's Section 5.1.2 procedure:

1. generate an AS-level topology following the power law,
2. classify ASes by connection degree (Core / Regional ISP / Stub),
3. decide AS relationships (provider-customer between levels, peer-peer
   within a level), guaranteeing every non-Core AS a provider path to the
   Core and that Core ASes form a clique (the "Dense Core" of
   Subramanian et al.),
4./5. import/export policies follow from the relationships (implemented in
   :mod:`repro.routing.bgp.policy`),
6. create a router-level power-law topology inside every AS, with OSPF
   routing inside and default routes to the outside; multi-homed stubs
   get a backup default (paper step 6d).

The router-level output is a single :class:`repro.topology.Network` whose
AS domains carry the relationship sets the BGP configuration consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .brite import build_router_network, powerlaw_edges
from .geometry import Plane, latency_from_miles, MILES_TO_METERS
from .hosts import attach_hosts
from .models import ASDomain, ASTier, Network, NodeKind

__all__ = [
    "ASLevelTopology",
    "generate_as_level_topology",
    "classify_ases",
    "assign_relationships",
    "generate_multi_as_network",
    "build_multi_as_network",
]

#: Inter-AS links are long-haul fat pipes.
INTER_AS_BANDWIDTH_BPS = 10e9
#: Region radius per tier (miles): cores span the continent, stubs a metro.
TIER_RADIUS_MILES = {ASTier.CORE: 700.0, ASTier.REGIONAL: 350.0, ASTier.STUB: 150.0}


@dataclass
class ASLevelTopology:
    """AS graph plus classification and relationships (pre-router-level)."""

    num_ases: int
    edges: list[tuple[int, int]]
    tiers: dict[int, ASTier]
    providers: dict[int, set[int]]
    customers: dict[int, set[int]]
    peers: dict[int, set[int]]

    def degree(self, as_id: int) -> int:
        """Connection degree of an AS in the AS-level graph."""
        return sum(1 for (a, b) in self.edges if a == as_id or b == as_id)


def generate_as_level_topology(
    num_ases: int, rng: np.random.Generator, m: int = 2
) -> list[tuple[int, int]]:
    """Step 1: power-law AS graph (Barabási-Albert attachment)."""
    u, v = powerlaw_edges(num_ases, m, rng)
    return [(int(a), int(b)) for a, b in zip(u, v)]


def classify_ases(
    num_ases: int,
    edges: list[tuple[int, int]],
    core_fraction: float = 0.02,
) -> dict[int, ASTier]:
    """Step 2: classify by connection degree.

    - Core: the top-degree ASes (~2 % of all ASes, at least 2 — the
      paper's "Dense Cores" are ~2 % of the Internet),
    - Stub: degree 1 or 2,
    - Regional ISP: everything in between.
    """
    degree = np.zeros(num_ases, dtype=np.int64)
    for a, b in edges:
        degree[a] += 1
        degree[b] += 1
    num_core = max(2, int(round(core_fraction * num_ases)))
    num_core = min(num_core, num_ases)
    core_ids = set(np.argsort(-degree, kind="stable")[:num_core].tolist())
    tiers: dict[int, ASTier] = {}
    for as_id in range(num_ases):
        if as_id in core_ids:
            tiers[as_id] = ASTier.CORE
        elif degree[as_id] <= 2:
            tiers[as_id] = ASTier.STUB
        else:
            tiers[as_id] = ASTier.REGIONAL
    return tiers


_TIER_RANK = {ASTier.CORE: 0, ASTier.REGIONAL: 1, ASTier.STUB: 2}


def assign_relationships(
    num_ases: int,
    edges: list[tuple[int, int]],
    tiers: dict[int, ASTier],
    rng: np.random.Generator,
) -> ASLevelTopology:
    """Step 3: decide AS relationships and repair connectivity.

    Edges between different tiers become provider(higher)-customer(lower);
    edges within a tier become peer-peer. Afterwards:

    - every non-Core AS without a provider gets a new provider link
      (stubs prefer regionals, regionals attach to a core), guaranteeing a
      provider-path to the Dense Core, and
    - Core ASes are completed into a clique of peers.
    """
    edge_set = {(min(a, b), max(a, b)) for a, b in edges}
    providers: dict[int, set[int]] = {i: set() for i in range(num_ases)}
    customers: dict[int, set[int]] = {i: set() for i in range(num_ases)}
    peers: dict[int, set[int]] = {i: set() for i in range(num_ases)}

    def relate(a: int, b: int) -> None:
        ra, rb = _TIER_RANK[tiers[a]], _TIER_RANK[tiers[b]]
        if ra == rb:
            peers[a].add(b)
            peers[b].add(a)
        elif ra < rb:  # a is higher tier -> a provides to b
            providers[b].add(a)
            customers[a].add(b)
        else:
            providers[a].add(b)
            customers[b].add(a)

    for a, b in edge_set:
        relate(a, b)

    cores = sorted(i for i in range(num_ases) if tiers[i] is ASTier.CORE)
    regionals = sorted(i for i in range(num_ases) if tiers[i] is ASTier.REGIONAL)

    # Repair: every non-core AS needs at least one provider.
    for as_id in range(num_ases):
        if tiers[as_id] is ASTier.CORE or providers[as_id]:
            continue
        if tiers[as_id] is ASTier.STUB and regionals:
            candidates = regionals
        else:
            candidates = cores
        choice = int(candidates[rng.integers(len(candidates))])
        edge_set.add((min(as_id, choice), max(as_id, choice)))
        relate(as_id, choice)

    # Repair: regionals must reach a core through providers. A regional's
    # providers are cores by construction, so require one core provider.
    for as_id in regionals:
        if not any(tiers[p] is ASTier.CORE for p in providers[as_id]):
            choice = int(cores[rng.integers(len(cores))])
            edge_set.add((min(as_id, choice), max(as_id, choice)))
            relate(as_id, choice)

    # Core clique.
    for i, a in enumerate(cores):
        for b in cores[i + 1 :]:
            if (min(a, b), max(a, b)) not in edge_set:
                edge_set.add((min(a, b), max(a, b)))
                relate(a, b)

    return ASLevelTopology(
        num_ases=num_ases,
        edges=sorted(edge_set),
        tiers=tiers,
        providers=providers,
        customers=customers,
        peers=peers,
    )


def _pick_border_router(
    net: Network, router_ids: list[int], rng: np.random.Generator
) -> int:
    """Border routers are sampled degree-proportionally (hubs peer outward)."""
    degrees = np.array([net.degree(r) for r in router_ids], dtype=np.float64)
    probs = degrees / degrees.sum() if degrees.sum() > 0 else None
    return int(rng.choice(router_ids, p=probs))


def generate_multi_as_network(
    num_ases: int = 100,
    routers_per_as: int = 200,
    num_hosts: int | None = None,
    plane: Plane | None = None,
    seed: int = 0,
    core_fraction: float = 0.02,
    as_attachment: int = 2,
    router_attachment: int = 2,
) -> Network:
    """The paper's multi-AS experimental network (Section 5.2.1).

    Defaults mirror the paper: 100 ASes x 200 routers with 10,000 hosts on
    Stub ASes over a 5000 mi x 5000 mi plane. Pass smaller values for
    laptop-scale runs; structure (tier mix, relationships, default routes)
    is scale-invariant.
    """
    rng = np.random.default_rng(seed)
    if num_hosts is None:
        num_hosts = (num_ases * routers_per_as) // 2
    as_edges = generate_as_level_topology(num_ases, rng, m=as_attachment)
    tiers = classify_ases(num_ases, as_edges, core_fraction)
    topo = assign_relationships(num_ases, as_edges, tiers, rng)
    return build_multi_as_network(
        topo,
        routers_per_as=routers_per_as,
        num_hosts=num_hosts,
        plane=plane,
        rng=rng,
        router_attachment=router_attachment,
    )


def build_multi_as_network(
    topo: ASLevelTopology,
    routers_per_as: int = 25,
    num_hosts: int | None = None,
    plane: Plane | None = None,
    rng: np.random.Generator | None = None,
    router_attachment: int = 2,
) -> Network:
    """Steps 6+ of the procedure for a *given* AS-level topology.

    Splitting this out lets measured AS graphs (e.g. inferred Internet
    relationships loaded via :mod:`repro.topology.external`) be fed into
    the same router-level construction and BGP configuration — the
    validation path the paper proposes in Section 7.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    plane = plane or Plane()
    num_ases = topo.num_ases
    if num_hosts is None:
        num_hosts = (num_ases * routers_per_as) // 2

    net = Network()
    centers = plane.random_points(num_ases, rng)
    as_routers: dict[int, list[int]] = {}
    for as_id in range(num_ases):
        tier = topo.tiers[as_id]
        dom = net.add_as(as_id, tier)
        dom.providers = set(topo.providers[as_id])
        dom.customers = set(topo.customers[as_id])
        dom.peers = set(topo.peers[as_id])
        _, router_ids = build_router_network(
            routers_per_as,
            plane,
            rng,
            m=router_attachment,
            as_id=as_id,
            region_center=tuple(centers[as_id]),
            region_radius_miles=TIER_RADIUS_MILES[tier],
            net=net,
        )
        dom.routers = list(router_ids)
        as_routers[as_id] = router_ids

    # Step 6 + inter-AS wiring: one physical link per AS-level edge,
    # between degree-weighted border routers of each side.
    for a, b in topo.edges:
        ra = _pick_border_router(net, as_routers[a], rng)
        rb = _pick_border_router(net, as_routers[b], rng)
        pa = np.asarray(net.nodes[ra].position)
        pb = np.asarray(net.nodes[rb].position)
        dist = float(np.linalg.norm(pa - pb))
        latency = max(float(latency_from_miles(dist)), 0.1e-3)
        net.add_link(ra, rb, INTER_AS_BANDWIDTH_BPS, latency)
        net.as_domains[a].border_links.setdefault(b, []).append((ra, rb))
        net.as_domains[b].border_links.setdefault(a, []).append((rb, ra))

    # Default/backup routes for stub ASes (step 6c/6d): the egress border
    # router toward each provider, primary first.
    for as_id, dom in net.as_domains.items():
        if dom.tier is not ASTier.STUB:
            continue
        for provider in sorted(dom.providers):
            for local, _remote in dom.border_links.get(provider, []):
                dom.default_routes.append((local, provider))

    # Hosts attach only to stub ASes (paper Section 5.2.1).
    stub_routers = [
        r for as_id, dom in net.as_domains.items() if dom.tier is ASTier.STUB for r in dom.routers
    ]
    if not stub_routers:  # tiny configurations may classify no stubs
        stub_routers = [r for rs in as_routers.values() for r in rs]
    attach_hosts(net, num_hosts, rng, router_ids=stub_routers)

    # Construction-boundary validation: a generator bug (asymmetric
    # relationship, unmirrored border link, disconnected AS) fails here
    # with a named diagnostic instead of corrupting downstream results.
    from ..analysis.bgp_check import validate_bgp_policy
    from ..analysis.topology_check import validate_topology

    validate_topology(net)
    validate_bgp_policy(net)
    return net
