"""Virtual network data model: routers, hosts, links, AS domains.

A :class:`Network` is the object every other subsystem consumes: routing
builds forwarding tables over it, the simulator instantiates queues per
link, and the load balancer converts it into a
:class:`repro.partition.WeightedGraph`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..partition.graph import WeightedGraph

__all__ = ["NodeKind", "ASTier", "Node", "Link", "ASDomain", "Network"]


class NodeKind(enum.Enum):
    ROUTER = "router"
    HOST = "host"


class ASTier(enum.Enum):
    """AS classification from the paper's step 2 (Section 5.1.2)."""

    CORE = "core"
    REGIONAL = "regional"
    STUB = "stub"


@dataclass(frozen=True)
class Node:
    """A simulated network entity (router or end host).

    ``position`` is (x, y) in miles on the geographic plane; ``as_id`` is
    the autonomous system the node belongs to (0 for single-AS networks).
    """

    node_id: int
    kind: NodeKind
    as_id: int
    position: tuple[float, float]

    @property
    def is_router(self) -> bool:
        """True for router nodes."""
        return self.kind is NodeKind.ROUTER


@dataclass(frozen=True)
class Link:
    """A bidirectional link with bandwidth, propagation latency, and queue.

    ``latency_s`` is the propagation delay in seconds (from geographic
    distance); ``bandwidth_bps`` the capacity of each direction.
    """

    link_id: int
    u: int
    v: int
    bandwidth_bps: float
    latency_s: float
    queue_bytes: int = 64 * 1024

    def other(self, node_id: int) -> int:
        """The opposite endpoint of the link."""
        if node_id == self.u:
            return self.v
        if node_id == self.v:
            return self.u
        raise ValueError(f"node {node_id} is not an endpoint of link {self.link_id}")

    @property
    def latency_ms(self) -> float:
        """Propagation latency in milliseconds."""
        return self.latency_s * 1e3


@dataclass
class ASDomain:
    """An autonomous system: members, tier, and business relationships."""

    as_id: int
    tier: ASTier
    routers: list[int] = field(default_factory=list)
    hosts: list[int] = field(default_factory=list)
    providers: set[int] = field(default_factory=set)
    customers: set[int] = field(default_factory=set)
    peers: set[int] = field(default_factory=set)
    #: border router per neighbor AS: {neighbor_as: (local_router, remote_router)}
    border_links: dict[int, list[tuple[int, int]]] = field(default_factory=dict)
    #: default-route egress for stub ASes: (border_router, provider_as);
    #: multi-homed stubs also get a backup (paper step 6d).
    default_routes: list[tuple[int, int]] = field(default_factory=list)

    @property
    def neighbor_ases(self) -> set[int]:
        """All neighboring AS ids, whatever the relationship."""
        return self.providers | self.customers | self.peers

    def relationship_to(self, other_as: int) -> str:
        """'provider', 'customer', or 'peer' — how *other_as* relates to us.

        Returns what the neighbor *is to this AS*: if ``other_as`` is in
        ``self.providers`` the answer is ``'provider'``.
        """
        if other_as in self.providers:
            return "provider"
        if other_as in self.customers:
            return "customer"
        if other_as in self.peers:
            return "peer"
        raise KeyError(f"AS {other_as} is not a neighbor of AS {self.as_id}")


class Network:
    """A complete virtual network (the simulator input).

    Construction is incremental (``add_node`` / ``add_link``); afterwards
    the object behaves as an immutable adjacency-indexed structure.
    """

    def __init__(self) -> None:
        self.nodes: list[Node] = []
        self.links: list[Link] = []
        self.as_domains: dict[int, ASDomain] = {}
        self._adj: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        kind: NodeKind,
        as_id: int = 0,
        position: tuple[float, float] = (0.0, 0.0),
    ) -> int:
        """Append a node; returns its dense id."""
        node_id = len(self.nodes)
        self.nodes.append(Node(node_id, kind, as_id, (float(position[0]), float(position[1]))))
        self._adj[node_id] = []
        return node_id

    def add_link(
        self,
        u: int,
        v: int,
        bandwidth_bps: float,
        latency_s: float,
        queue_bytes: int = 64 * 1024,
    ) -> int:
        """Connect two nodes; returns the link id. Validates endpoints and parameters."""
        if u == v:
            raise ValueError("self links are not allowed")
        for node in (u, v):
            if not 0 <= node < len(self.nodes):
                raise ValueError(f"unknown node {node}")
        if latency_s <= 0:
            raise ValueError("latency must be positive")
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        link_id = len(self.links)
        self.links.append(Link(link_id, u, v, float(bandwidth_bps), float(latency_s), queue_bytes))
        self._adj[u].append(link_id)
        self._adj[v].append(link_id)
        return link_id

    def add_as(self, as_id: int, tier: ASTier) -> ASDomain:
        """Register an AS domain (unique per id)."""
        if as_id in self.as_domains:
            raise ValueError(f"AS {as_id} already exists")
        dom = ASDomain(as_id=as_id, tier=tier)
        self.as_domains[as_id] = dom
        return dom

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total node count (routers + hosts)."""
        return len(self.nodes)

    @property
    def num_links(self) -> int:
        """Total link count."""
        return len(self.links)

    @property
    def num_routers(self) -> int:
        """Number of router nodes."""
        return sum(1 for n in self.nodes if n.kind is NodeKind.ROUTER)

    @property
    def num_hosts(self) -> int:
        """Number of host nodes."""
        return sum(1 for n in self.nodes if n.kind is NodeKind.HOST)

    def router_ids(self) -> list[int]:
        """Ids of all router nodes."""
        return [n.node_id for n in self.nodes if n.kind is NodeKind.ROUTER]

    def host_ids(self) -> list[int]:
        """Ids of all host nodes."""
        return [n.node_id for n in self.nodes if n.kind is NodeKind.HOST]

    def links_of(self, node_id: int) -> list[Link]:
        """The links incident to a node."""
        return [self.links[i] for i in self._adj[node_id]]

    def neighbors(self, node_id: int) -> Iterator[tuple[int, Link]]:
        """Yield ``(neighbor_id, link)`` for each incident link."""
        for link_id in self._adj[node_id]:
            link = self.links[link_id]
            yield link.other(node_id), link

    def link_between(self, u: int, v: int) -> Link | None:
        """The link joining two nodes, if adjacent."""
        for link_id in self._adj[u]:
            link = self.links[link_id]
            if link.other(u) == v:
                return link
        return None

    def degree(self, node_id: int) -> int:
        """Number of links incident to a node."""
        return len(self._adj[node_id])

    def total_node_bandwidth(self, node_id: int) -> float:
        """Sum of link capacities incident to a node (the TOP vertex weight)."""
        return float(sum(l.bandwidth_bps for l in self.links_of(node_id)))

    def min_link_latency(self) -> float:
        """Smallest link latency in the network (inf when linkless)."""
        if not self.links:
            return float("inf")
        return min(l.latency_s for l in self.links)

    def is_connected(self) -> bool:
        """True when every node is reachable from node 0 (or empty)."""
        if not self.nodes:
            return True
        seen = {0}
        stack = [0]
        while stack:
            x = stack.pop()
            for y, _ in self.neighbors(x):
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        return len(seen) == len(self.nodes)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_graph(
        self,
        vertex_weight: Sequence[float] | np.ndarray | None = None,
        edge_weight: Sequence[float] | np.ndarray | None = None,
    ) -> WeightedGraph:
        """Convert to the partitioner's :class:`WeightedGraph`.

        Vertex ``i`` of the graph is node ``i`` of the network; undirected
        edge order matches ``self.links``. Default vertex weight is 1 and
        edge weight is 1 — the load balance approaches
        (:mod:`repro.core.weights`) substitute their own.
        """
        us = np.fromiter((l.u for l in self.links), dtype=np.int64, count=len(self.links))
        vs = np.fromiter((l.v for l in self.links), dtype=np.int64, count=len(self.links))
        lat = np.fromiter((l.latency_s for l in self.links), dtype=np.float64, count=len(self.links))
        return WeightedGraph(self.num_nodes, us, vs, edge_weight, lat, vertex_weight)

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` with node/link attributes."""
        import networkx as nx

        g = nx.Graph()
        for n in self.nodes:
            g.add_node(n.node_id, kind=n.kind.value, as_id=n.as_id, pos=n.position)
        for l in self.links:
            g.add_edge(l.u, l.v, bandwidth=l.bandwidth_bps, latency=l.latency_s)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network(routers={self.num_routers}, hosts={self.num_hosts}, "
            f"links={self.num_links}, ases={len(self.as_domains)})"
        )
