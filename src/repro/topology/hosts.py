"""Host attachment and traffic endpoint selection.

Hosts connect to routers with short access links (LAN-scale latency,
100 Mbps). The paper attaches 10,000 hosts for background traffic
generation and live-traffic agents; in multi-AS networks hosts attach
only to Stub ASes (Section 5.2.1).
"""

from __future__ import annotations

import numpy as np

from .geometry import latency_from_miles
from .models import Network, NodeKind

__all__ = [
    "attach_hosts",
    "pick_clients_and_servers",
    "HOST_ACCESS_BANDWIDTH_BPS",
    "HOST_ACCESS_LATENCY_S",
]

HOST_ACCESS_BANDWIDTH_BPS = 100e6
#: Access link latency (~3 mile local loop -> ~24 us, floored at 20 us).
HOST_ACCESS_LATENCY_S = max(float(latency_from_miles(3.0)), 20e-6)


def attach_hosts(
    net: Network,
    num_hosts: int,
    rng: np.random.Generator,
    as_id: int | None = None,
    router_ids: list[int] | None = None,
) -> list[int]:
    """Attach ``num_hosts`` hosts to random routers via access links.

    ``router_ids`` restricts the candidate attachment points (e.g. the
    routers of one stub AS); otherwise all routers of ``as_id`` (or the
    whole network) are candidates. Each host inherits the AS of its router
    and sits at the router's position (access distance is negligible at
    continental scale).
    """
    if router_ids is None:
        router_ids = [
            n.node_id
            for n in net.nodes
            if n.kind is NodeKind.ROUTER and (as_id is None or n.as_id == as_id)
        ]
    if not router_ids:
        raise ValueError("no candidate routers to attach hosts to")
    hosts: list[int] = []
    choices = rng.integers(0, len(router_ids), size=num_hosts)
    for i in range(num_hosts):
        router = net.nodes[router_ids[int(choices[i])]]
        host_id = net.add_node(NodeKind.HOST, as_id=router.as_id, position=router.position)
        net.add_link(host_id, router.node_id, HOST_ACCESS_BANDWIDTH_BPS, HOST_ACCESS_LATENCY_S)
        dom = net.as_domains.get(router.as_id)
        if dom is not None:
            dom.hosts.append(host_id)
        hosts.append(host_id)
    return hosts


def pick_clients_and_servers(
    net: Network,
    num_clients: int,
    num_servers: int,
    rng: np.random.Generator,
) -> tuple[list[int], list[int]]:
    """Disjoint random client/server host sets for background traffic.

    The paper uses 8,000 clients and 2,000 servers out of 10,000 hosts;
    when the network has fewer hosts the counts are scaled down
    proportionally (keeping at least one of each).
    """
    hosts = net.host_ids()
    if not hosts:
        raise ValueError("network has no hosts")
    want = num_clients + num_servers
    if want > len(hosts):
        scale = len(hosts) / want
        num_clients = max(1, int(num_clients * scale))
        num_servers = max(1, len(hosts) - num_clients) if len(hosts) > 1 else 1
        num_servers = min(num_servers, max(1, int(round(num_servers))))
        if num_clients + num_servers > len(hosts):
            num_clients = max(1, len(hosts) - num_servers)
    chosen = rng.choice(len(hosts), size=num_clients + num_servers, replace=False)
    clients = [hosts[int(i)] for i in chosen[:num_clients]]
    servers = [hosts[int(i)] for i in chosen[num_clients:]]
    return clients, servers
