"""Internet-like topology generation (BRITE / maBrite).

Single-AS flat networks (:func:`generate_flat_network`) reproduce the
paper's Section 4 setup; multi-AS networks with realistic AS
relationships (:func:`generate_multi_as_network`) reproduce Section 5.
"""

from .brite import (
    MIN_LINK_LATENCY_S,
    assign_bandwidths,
    build_router_network,
    generate_flat_network,
    powerlaw_edges,
    waxman_edges,
)
from .geometry import (
    MILES_TO_METERS,
    SIGNAL_SPEED_MPS,
    Plane,
    latency_from_miles,
    pairwise_distance_miles,
)
from .hosts import (
    HOST_ACCESS_BANDWIDTH_BPS,
    HOST_ACCESS_LATENCY_S,
    attach_hosts,
    pick_clients_and_servers,
)
from .external import infer_tiers, load_as_relationships, parse_as_relationships
from .mabrite import (
    ASLevelTopology,
    assign_relationships,
    build_multi_as_network,
    classify_ases,
    generate_as_level_topology,
    generate_multi_as_network,
)
from .models import ASDomain, ASTier, Link, Network, Node, NodeKind

__all__ = [
    "Plane",
    "latency_from_miles",
    "pairwise_distance_miles",
    "MILES_TO_METERS",
    "SIGNAL_SPEED_MPS",
    "MIN_LINK_LATENCY_S",
    "Network",
    "Node",
    "Link",
    "ASDomain",
    "ASTier",
    "NodeKind",
    "powerlaw_edges",
    "waxman_edges",
    "assign_bandwidths",
    "build_router_network",
    "generate_flat_network",
    "generate_multi_as_network",
    "build_multi_as_network",
    "parse_as_relationships",
    "load_as_relationships",
    "infer_tiers",
    "generate_as_level_topology",
    "classify_ases",
    "assign_relationships",
    "ASLevelTopology",
    "attach_hosts",
    "pick_clients_and_servers",
    "HOST_ACCESS_BANDWIDTH_BPS",
    "HOST_ACCESS_LATENCY_S",
]
