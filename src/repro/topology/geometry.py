"""Geographic plane and distance-derived link latency.

The paper spreads 20,000 routers over a 5000 mile x 5000 mile area
(roughly the North American continent) and link latencies follow from
geographic distance — this is what creates the spectrum of link latencies
that the hierarchical load balance exploits (nearby routers have sub-
threshold latencies and get collapsed; long-haul links provide lookahead).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Plane", "MILES_TO_METERS", "SIGNAL_SPEED_MPS", "latency_from_miles"]

MILES_TO_METERS = 1609.344
#: Propagation speed in fiber, ~2/3 the speed of light.
SIGNAL_SPEED_MPS = 2.0e8


def latency_from_miles(miles: float | np.ndarray) -> float | np.ndarray:
    """Propagation latency (seconds) for a geographic span in miles.

    5000 miles -> ~40 ms, 25 miles -> ~0.2 ms; the paper's interesting
    Tmll range (0.1 ms .. 3 ms) corresponds to 12..370 mile links.
    """
    return np.asarray(miles) * MILES_TO_METERS / SIGNAL_SPEED_MPS


@dataclass(frozen=True)
class Plane:
    """A rectangular geographic area in miles.

    Defaults to the paper's 5000 mile x 5000 mile continental area.
    """

    width_miles: float = 5000.0
    height_miles: float = 5000.0

    def random_points(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random (x, y) positions, shape ``(count, 2)`` in miles."""
        pts = rng.random((count, 2))
        pts[:, 0] *= self.width_miles
        pts[:, 1] *= self.height_miles
        return pts

    def clustered_points(
        self,
        count: int,
        rng: np.random.Generator,
        num_clusters: int = 0,
        cluster_radius_miles: float = 50.0,
    ) -> np.ndarray:
        """Positions drawn around random metro-cluster centers.

        BRITE's heavy-tailed placement concentrates routers in pops/metros;
        we approximate it with Gaussian clusters. ``num_clusters = 0``
        chooses ``max(1, count // 100)`` clusters.
        """
        if count == 0:
            return np.empty((0, 2))
        k = num_clusters if num_clusters > 0 else max(1, count // 100)
        centers = self.random_points(k, rng)
        which = rng.integers(0, k, size=count)
        pts = centers[which] + rng.normal(0.0, cluster_radius_miles, size=(count, 2))
        pts[:, 0] = np.clip(pts[:, 0], 0.0, self.width_miles)
        pts[:, 1] = np.clip(pts[:, 1], 0.0, self.height_miles)
        return pts

    def region_points(
        self,
        count: int,
        rng: np.random.Generator,
        center: tuple[float, float],
        radius_miles: float,
    ) -> np.ndarray:
        """Positions inside one region (used for routers of a single AS)."""
        pts = center + rng.normal(0.0, radius_miles / 2.0, size=(count, 2))
        pts[:, 0] = np.clip(pts[:, 0], 0.0, self.width_miles)
        pts[:, 1] = np.clip(pts[:, 1], 0.0, self.height_miles)
        return pts


def pairwise_distance_miles(points: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Euclidean distances (miles) between point rows ``u`` and ``v``."""
    d = points[u] - points[v]
    return np.sqrt((d * d).sum(axis=-1))


__all__.append("pairwise_distance_miles")
