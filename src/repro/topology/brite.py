"""BRITE-style degree-based topology generation.

The paper generates router topologies with an adapted BRITE tool — a
degree-based generator following the power law of Faloutsos et al.
(SIGCOMM'99). We provide the two BRITE models:

- Barabási-Albert preferential attachment (``powerlaw_edges``), the model
  the paper uses, and
- Waxman random geometric graphs (``waxman_edges``) as the classical
  alternative.

Link latencies derive from geographic distance on the plane; bandwidths
are drawn from a capacity ladder weighted toward the network core.
"""

from __future__ import annotations

import numpy as np

from .geometry import Plane, latency_from_miles, pairwise_distance_miles
from .hosts import attach_hosts
from .models import ASTier, Network, NodeKind

__all__ = [
    "powerlaw_edges",
    "waxman_edges",
    "assign_bandwidths",
    "build_router_network",
    "generate_flat_network",
    "MIN_LINK_LATENCY_S",
]

#: Floor on link latency: even co-located routers have serialization and
#: equipment delay (~10 us). Keeping this positive also keeps the MLL of
#: any partition strictly positive.
MIN_LINK_LATENCY_S = 10e-6

#: Capacity ladder (bps): OC-3, OC-12, GigE, OC-48, 10GigE.
CAPACITY_LADDER_BPS = np.array([155e6, 622e6, 1e9, 2.5e9, 10e9])


def powerlaw_edges(
    num_nodes: int, m: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Barabási-Albert preferential attachment edge list.

    Each arriving node connects to ``m`` distinct existing nodes sampled
    proportionally to their current degree, yielding a power-law degree
    distribution. The first ``m + 1`` nodes form a clique seed, so the
    result is connected for ``num_nodes >= 2``.
    """
    if num_nodes < 2:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    m = max(1, min(m, num_nodes - 1))
    us: list[int] = []
    vs: list[int] = []
    # `targets` holds one entry per edge endpoint: sampling uniformly from
    # it is degree-proportional sampling.
    targets: list[int] = []
    seed = m + 1
    for a in range(seed):
        for b in range(a + 1, seed):
            us.append(a)
            vs.append(b)
            targets.extend((a, b))
    for v in range(seed, num_nodes):
        chosen: set[int] = set()
        # Rejection-sample distinct targets; the loop terminates because
        # there are at least m distinct nodes in `targets`.
        while len(chosen) < m:
            t = targets[rng.integers(len(targets))]
            chosen.add(int(t))
        for t in chosen:
            us.append(t)
            vs.append(v)
            targets.extend((t, v))
    return np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)


def waxman_edges(
    positions: np.ndarray,
    rng: np.random.Generator,
    alpha: float = 0.15,
    beta: float = 0.2,
    scale_miles: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Waxman random geometric edges: P(u,v) = alpha * exp(-d / (beta * L)).

    ``L`` defaults to the maximum pairwise distance. A spanning tree over
    nearest neighbors is added to guarantee connectivity.
    """
    n = positions.shape[0]
    if n < 2:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    iu, ju = np.triu_indices(n, k=1)
    d = pairwise_distance_miles(positions, iu, ju)
    L = float(d.max()) if scale_miles is None else float(scale_miles)
    L = max(L, 1e-9)
    prob = alpha * np.exp(-d / (beta * L))
    keep = rng.random(d.shape[0]) < prob
    us, vs = list(iu[keep]), list(ju[keep])

    # Connect components via a greedy nearest-neighbor spanning pass.
    parent = np.arange(n)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in zip(us, vs):
        parent[find(int(a))] = find(int(b))
    roots = {find(i) for i in range(n)}
    while len(roots) > 1:
        comps = {}
        for i in range(n):
            comps.setdefault(find(i), []).append(i)
        comp_list = list(comps.values())
        base = comp_list[0]
        other = comp_list[1]
        # Join the closest pair between the two components.
        bi = np.array(base)
        oi = np.array(other)
        dd = np.linalg.norm(positions[bi][:, None, :] - positions[oi][None, :, :], axis=2)
        a_idx, b_idx = np.unravel_index(np.argmin(dd), dd.shape)
        a, b = int(bi[a_idx]), int(oi[b_idx])
        us.append(a)
        vs.append(b)
        parent[find(a)] = find(b)
        roots = {find(i) for i in range(n)}
    return np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)


def assign_bandwidths(
    u: np.ndarray, v: np.ndarray, degrees: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Draw a capacity per edge, biased upward for high-degree endpoints.

    BRITE assigns bandwidths independently of structure; real ISP cores
    run fatter pipes, and the TOP approach weights vertices by total
    incident bandwidth, so the bias matters for reproducing its behavior.
    """
    m = u.shape[0]
    if m == 0:
        return np.empty(0)
    dsum = degrees[u] + degrees[v]
    # Map degree-sum quantile to a rung of the ladder, +- one rung of noise.
    order = np.argsort(np.argsort(dsum))
    quantile = order / max(m - 1, 1)
    rung = np.floor(quantile * len(CAPACITY_LADDER_BPS)).astype(int)
    rung = np.clip(rung + rng.integers(-1, 2, size=m), 0, len(CAPACITY_LADDER_BPS) - 1)
    return CAPACITY_LADDER_BPS[rung]


def build_router_network(
    num_routers: int,
    plane: Plane,
    rng: np.random.Generator,
    m: int = 2,
    model: str = "powerlaw",
    as_id: int = 0,
    region_center: tuple[float, float] | None = None,
    region_radius_miles: float | None = None,
    net: Network | None = None,
) -> tuple[Network, list[int]]:
    """Create (or extend) a network with a router-level topology.

    Routers are placed in metro clusters on the plane (or within one
    region when ``region_center`` is given — used per-AS by maBrite).
    Returns the network and the new router node ids.
    """
    if net is None:
        net = Network()
    if region_center is not None:
        radius = region_radius_miles if region_radius_miles is not None else 100.0
        positions = plane.region_points(num_routers, rng, region_center, radius)
    else:
        positions = plane.clustered_points(num_routers, rng)

    router_ids = [
        net.add_node(NodeKind.ROUTER, as_id=as_id, position=tuple(positions[i]))
        for i in range(num_routers)
    ]

    if model == "powerlaw":
        u, v = powerlaw_edges(num_routers, m, rng)
    elif model == "waxman":
        u, v = waxman_edges(positions, rng)
    else:
        raise ValueError(f"unknown model {model!r}")

    degrees = np.zeros(num_routers, dtype=np.int64)
    np.add.at(degrees, u, 1)
    np.add.at(degrees, v, 1)
    bandwidths = assign_bandwidths(u, v, degrees, rng)
    dist = pairwise_distance_miles(positions, u, v)
    latency = np.maximum(latency_from_miles(dist), MIN_LINK_LATENCY_S)
    for i in range(u.shape[0]):
        net.add_link(
            router_ids[int(u[i])],
            router_ids[int(v[i])],
            float(bandwidths[i]),
            float(latency[i]),
        )
    return net, router_ids


def generate_flat_network(
    num_routers: int = 20_000,
    num_hosts: int | None = None,
    plane: Plane | None = None,
    seed: int = 0,
    m: int = 2,
    model: str = "powerlaw",
) -> Network:
    """The paper's single-AS experimental network (Section 4.2).

    Defaults mirror the paper: 20,000 routers and 10,000 hosts spread over
    a 5000 mi x 5000 mi area; pass smaller values for laptop-scale runs.
    The whole network is one AS (id 0) routed with OSPF.
    """
    rng = np.random.default_rng(seed)
    plane = plane or Plane()
    if num_hosts is None:
        num_hosts = num_routers // 2
    net, router_ids = build_router_network(num_routers, plane, rng, m=m, model=model)
    dom = net.add_as(0, ASTier.CORE)
    dom.routers = list(router_ids)
    attach_hosts(net, num_hosts, rng, as_id=0)
    return net
