"""Load measured AS-level topologies (the paper's §7 validation input).

The paper's proposed validation: "use the AS level topology of the real
Internet and feed it into our BGP configuration procedure, allowing
direct comparison of routing in the Internet and our generated
configuration." This module parses inferred AS-relationship datasets in
the CAIDA serial-1 format::

    # comment lines start with '#'
    <provider-as>|<customer-as>|-1
    <peer-as>|<peer-as>|0

(whitespace-separated triples are accepted too), remaps arbitrary AS
numbers to dense ids, infers tiers from the relationship structure, and
returns an :class:`repro.topology.ASLevelTopology` that plugs straight
into :func:`repro.topology.build_multi_as_network` and
:func:`repro.routing.bgp.configure_bgp`.

Unlike the generator, measured data is **not repaired**: if the inferred
relationships leave some AS pair unreachable under valley-free export,
that is a property of the measurement — exactly what the validation is
meant to surface.
"""

from __future__ import annotations

from pathlib import Path

from .mabrite import ASLevelTopology
from .models import ASTier

__all__ = ["parse_as_relationships", "load_as_relationships", "infer_tiers"]


def parse_as_relationships(text: str) -> tuple[ASLevelTopology, dict[int, int]]:
    """Parse relationship records; returns the topology and the
    ``original_as_number -> dense_id`` map."""
    providers_of: dict[int, set[int]] = {}
    customers_of: dict[int, set[int]] = {}
    peers_of: dict[int, set[int]] = {}
    seen: list[int] = []
    seen_set: set[int] = set()

    def touch(asn: int) -> None:
        if asn not in seen_set:
            seen_set.add(asn)
            seen.append(asn)
            providers_of[asn] = set()
            customers_of[asn] = set()
            peers_of[asn] = set()

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|") if "|" in line else line.split()
        if len(parts) < 3:
            raise ValueError(f"line {lineno}: expected 'as1|as2|rel', got {raw!r}")
        try:
            a, b, rel = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError as exc:
            raise ValueError(f"line {lineno}: non-integer field in {raw!r}") from exc
        if a == b:
            raise ValueError(f"line {lineno}: self relationship for AS {a}")
        touch(a)
        touch(b)
        if rel == -1:  # a provides to b
            customers_of[a].add(b)
            providers_of[b].add(a)
        elif rel == 0:
            peers_of[a].add(b)
            peers_of[b].add(a)
        elif rel == 1:  # some datasets use 1 for customer->provider
            providers_of[a].add(b)
            customers_of[b].add(a)
        else:
            raise ValueError(f"line {lineno}: unknown relationship code {rel}")

    dense = {asn: i for i, asn in enumerate(sorted(seen))}
    n = len(dense)
    providers = {dense[a]: {dense[x] for x in providers_of[a]} for a in dense}
    customers = {dense[a]: {dense[x] for x in customers_of[a]} for a in dense}
    peers = {dense[a]: {dense[x] for x in peers_of[a]} for a in dense}

    # Conflicting records (an edge both peer and provider) are rejected.
    for a in range(n):
        overlap = (providers[a] | customers[a]) & peers[a]
        if overlap:
            raise ValueError(f"AS pair with conflicting relationship records: {overlap}")

    edges = sorted(
        {
            (min(a, b), max(a, b))
            for a in range(n)
            for b in providers[a] | customers[a] | peers[a]
        }
    )
    tiers = infer_tiers(n, providers, customers)
    topo = ASLevelTopology(
        num_ases=n,
        edges=edges,
        tiers=tiers,
        providers=providers,
        customers=customers,
        peers=peers,
    )
    return topo, dense


def infer_tiers(
    n: int,
    providers: dict[int, set[int]],
    customers: dict[int, set[int]],
) -> dict[int, ASTier]:
    """Tier classification from relationship structure.

    - CORE: no providers (top of the customer-provider hierarchy),
    - STUB: no customers (pure leaves),
    - REGIONAL: everything with both.
    An AS with neither providers nor customers (peer-only island) counts
    as STUB.
    """
    tiers: dict[int, ASTier] = {}
    for a in range(n):
        if not providers[a] and customers[a]:
            tiers[a] = ASTier.CORE
        elif not customers[a]:
            tiers[a] = ASTier.STUB
        else:
            tiers[a] = ASTier.REGIONAL
    return tiers


def load_as_relationships(path: str | Path) -> tuple[ASLevelTopology, dict[int, int]]:
    """Parse a relationship file from disk."""
    return parse_as_relationships(Path(path).read_text())
