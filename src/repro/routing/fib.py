"""Forwarding plane: composes BGP (inter-AS), OSPF (intra-AS), and
stub-AS default routes into per-hop next-node decisions.

This is what the packet simulator queries on every hop. The composition
follows the paper's structure:

- inside an AS, OSPF shortest path;
- between ASes, the BGP best route decides the next-hop AS and the border
  link is chosen hot-potato (the OSPF-closest egress — each router picks
  its own closest exit, which is provably loop-free);
- stub ASes do not carry the full BGP table: external traffic follows the
  default route to the primary provider (paper step 6c), except
  destinations learned from directly attached customers/peers; multi-homed
  stubs fail over to the backup default (step 6d).
"""

from __future__ import annotations

import hashlib

from ..topology.models import ASTier, Network
from .bgp.engine import BgpEngine
from .ospf import OspfRouting

__all__ = ["ForwardingPlane"]


class ForwardingPlane:
    """Per-hop forwarding for a (possibly multi-AS) network.

    Parameters
    ----------
    net:
        The network. Every node's ``as_id`` selects its OSPF domain.
    bgp:
        A converged :class:`BgpEngine` for multi-AS networks; ``None``
        for single-AS networks (pure OSPF).
    """

    def __init__(self, net: Network, bgp: BgpEngine | None = None) -> None:
        self.net = net
        self.bgp = bgp
        self._ospf: dict[int, OspfRouting] = {}
        members: dict[int, list[int]] = {}
        for node in net.nodes:
            members.setdefault(node.as_id, []).append(node.node_id)
        for as_id, mem in members.items():
            self._ospf[as_id] = OspfRouting(net, mem)
        # (node, dest) -> next node; flows hammer the same pairs.
        self._cache: dict[tuple[int, int], int | None] = {}
        # Inter-AS border links currently out of service (repro.faults),
        # keyed by the canonical (min, max) endpoint pair. Empty on a
        # healthy network: _toward_border pays one truthiness check.
        self._down_borders: set[tuple[int, int]] = set()

    def ospf_domain(self, as_id: int) -> OspfRouting:
        """The OSPF routing domain of one AS."""
        return self._ospf[as_id]

    # ------------------------------------------------------------------
    def next_hop(self, node: int, dest: int) -> int | None:
        """The next node on the path from ``node`` to ``dest``.

        Returns ``None`` for unreachable destinations — under policy
        routing, connectivity does not imply reachability.
        """
        if node == dest:
            return None
        key = (node, dest)
        hit = self._cache.get(key, _MISS)
        if hit is not _MISS:
            return hit
        result = self._compute_next_hop(node, dest)
        self._cache[key] = result
        return result

    def _compute_next_hop(self, node: int, dest: int) -> int | None:
        node_as = self.net.nodes[node].as_id
        dest_as = self.net.nodes[dest].as_id
        if node_as == dest_as:
            return self._ospf[node_as].next_hop(node, dest)
        if self.bgp is None:
            # Single OSPF domain networks shouldn't hit this; treat the
            # whole network as one domain if AS ids differ without BGP.
            domain = self._ospf.get(node_as)
            return domain.next_hop(node, dest) if domain and dest in domain else None

        next_as = self._select_next_as(node_as, dest_as)
        if next_as is None:
            return None
        return self._toward_border(node, node_as, next_as)

    def _select_next_as(self, node_as: int, dest_as: int) -> int | None:
        """Next-hop AS: BGP best route, or the stub default route."""
        assert self.bgp is not None
        dom = self.net.as_domains[node_as]
        if dom.tier is ASTier.STUB:
            route = self.bgp.route(node_as, dest_as)
            if route is not None and not route.is_local:
                nbr = route.next_hop_as
                if nbr in dom.customers or nbr in dom.peers:
                    return nbr
            # Default route: primary provider, backup for multi-homed stubs.
            for _egress, provider in dom.default_routes:
                if provider in dom.border_links:
                    return provider
            return None
        return self.bgp.next_hop_as(node_as, dest_as)

    def _toward_border(self, node: int, node_as: int, next_as: int) -> int | None:
        """Hot-potato: head for the OSPF-closest egress toward ``next_as``;
        if we *are* that egress, cross the inter-AS link."""
        dom = self.net.as_domains[node_as]
        links = dom.border_links.get(next_as)
        if not links:
            return None
        ospf = self._ospf[node_as]
        down = self._down_borders
        best_pair: tuple[int, int] | None = None
        best_dist = float("inf")
        for local, remote in links:
            if down and (min(local, remote), max(local, remote)) in down:
                continue
            d = ospf.distance(node, local)
            if d < best_dist:
                best_dist = d
                best_pair = (local, remote)
        if best_pair is None or best_dist == float("inf"):
            return None
        local, remote = best_pair
        if node == local:
            return remote
        return ospf.next_hop(node, local)

    # ------------------------------------------------------------------
    # Topology-state changes (repro.faults recovery path)
    # ------------------------------------------------------------------
    def flush_cache(self) -> None:
        """Drop every cached forwarding decision (route recomputation)."""
        self._cache.clear()

    def set_link_state(self, link_id: int, up: bool) -> None:
        """Propagate a link state change into the routing layers.

        Intra-AS links feed the owning OSPF domain (SPF recomputation);
        inter-AS border links are excluded from (or restored to) the
        hot-potato egress choice. Either way the forwarding cache is
        flushed so every subsequent hop decision sees the new state.
        """
        link = self.net.links[link_id]
        as_u = self.net.nodes[link.u].as_id
        as_v = self.net.nodes[link.v].as_id
        if as_u == as_v:
            self._ospf[as_u].set_link_state(link_id, up)
        else:
            pair = (min(link.u, link.v), max(link.u, link.v))
            if up:
                self._down_borders.discard(pair)
            else:
                self._down_borders.add(pair)
        self.flush_cache()

    def set_node_state(self, node_id: int, up: bool) -> None:
        """Propagate a router/host crash or restart into its OSPF domain."""
        self._ospf[self.net.nodes[node_id].as_id].set_node_state(node_id, up)
        self.flush_cache()

    def route_recompute_stats(self) -> dict[str, int]:
        """Aggregate OSPF recomputation counters across all domains."""
        return {
            "invalidations": sum(d.invalidations for d in self._ospf.values()),
            "trees_built": sum(d.trees_built for d in self._ospf.values()),
        }

    def digest(self) -> str:
        """SHA-256 over the resolved forwarding decisions, order-independent.

        Hashes every ``(node, dest) -> next_hop`` entry the run actually
        resolved (the lazily filled cache), sorted by key, so two runs
        that made the same forwarding decisions produce the same hex
        digest regardless of resolution order. The regression-fingerprint
        test uses this as the routing component of a run's identity.
        """
        h = hashlib.sha256()
        for (node, dest), nxt in sorted(self._cache.items()):
            h.update(f"{node},{dest}->{-1 if nxt is None else nxt};".encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    def node_path(self, src: int, dst: int, max_hops: int | None = None) -> list[int] | None:
        """Full hop-by-hop node path (None when unreachable)."""
        limit = max_hops if max_hops is not None else self.net.num_nodes + 1
        path = [src]
        current = src
        for _ in range(limit):
            if current == dst:
                return path
            nxt = self.next_hop(current, dst)
            if nxt is None:
                return None
            path.append(nxt)
            current = nxt
        return None

    def path_latency(self, src: int, dst: int) -> float:
        """Sum of propagation latencies along the forwarding path (inf if
        unreachable)."""
        path = self.node_path(src, dst)
        if path is None:
            return float("inf")
        total = 0.0
        for a, b in zip(path, path[1:]):
            link = self.net.link_between(a, b)
            assert link is not None
            total += link.latency_s
        return total

    def as_level_path(self, src: int, dst: int) -> list[int] | None:
        """The sequence of AS ids the forwarding path traverses."""
        path = self.node_path(src, dst)
        if path is None:
            return None
        ases: list[int] = []
        for node in path:
            a = self.net.nodes[node].as_id
            if not ases or ases[-1] != a:
                ases.append(a)
        return ases


_MISS = object()
