"""The BGP sequential decision process.

BGP picks one best route per prefix from all candidates by walking a list
of criteria in order; the paper highlights local preference as the first
and most important rule (it is how operators enforce import policy).
"""

from __future__ import annotations

from collections.abc import Iterable

from .attributes import Route

__all__ = ["decision_key", "best_route"]


def decision_key(route: Route) -> tuple:
    """Sort key: *smaller is better* (use with ``min``).

    Criteria in order:

    1. highest local preference,
    2. shortest AS path,
    3. lowest origin type,
    4. smallest MED,
    5. lowest next-hop AS id (deterministic tie-break standing in for
       the lowest-router-id rule).
    """
    return (
        -route.local_pref,
        route.path_length,
        int(route.origin),
        route.med,
        route.next_hop_as,
    )


def best_route(candidates: Iterable[Route]) -> Route | None:
    """Run the decision process; ``None`` when there are no candidates."""
    best: Route | None = None
    best_key: tuple | None = None
    for route in candidates:
        key = decision_key(route)
        if best_key is None or key < best_key:
            best, best_key = route, key
    return best
