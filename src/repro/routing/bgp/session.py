"""BGP session lifecycle: teardown, withdrawal, and backoff re-establishment.

The convergence engine (:mod:`repro.routing.bgp.engine`) computes a
static fixed point over the relationship graph. Fault scenarios
(:mod:`repro.faults`) need the *dynamic* half of BGP: a link or router
failure kills the session between two speakers, the failed adjacency's
routes are withdrawn network-wide, and the session is re-established
with retries after the fault clears — at which point the withdrawn
routes are re-advertised.

The manager models this with the engine's own fixed-point machinery:

- **Teardown** removes the relationship edge from *both* speakers and
  re-runs the engine. Because each Jacobi sweep rebuilds every RIB from
  the inbox, routes that depended on the removed edge disappear — that
  *is* withdrawal propagation, and the iteration count is the
  withdrawal convergence time.
- **Re-establishment** restores the edge and re-runs; the re-advertised
  routes flow back in the same way.

Timing follows the standard FSM shape without simulating individual
KEEPALIVEs: a reset takes effect after the hold time would have expired,
and the CONNECT state retries with bounded exponential backoff plus a
small deterministic jitter (seeded) until the peer answers or the retry
budget is exhausted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .engine import BgpEngine

__all__ = ["SessionState", "SessionInfo", "SessionStats", "BgpSessionManager"]


class SessionState(enum.Enum):
    """Coarse BGP FSM state of one inter-AS session."""

    ESTABLISHED = "established"
    #: torn down, retrying with backoff
    CONNECT = "connect"
    #: torn down and out of retries
    DOWN = "down"


@dataclass
class SessionInfo:
    """Mutable state of one session between speaker ASes ``a < b``."""

    a: int
    b: int
    state: SessionState = SessionState.ESTABLISHED
    #: relationship labels removed at teardown, restored on re-establish
    rel_a_of_b: str = ""
    rel_b_of_a: str = ""
    #: simulated time before which re-establishment attempts fail
    down_until: float = 0.0
    #: consecutive failed attempts in the current CONNECT episode
    attempts: int = 0
    #: lifetime teardown count
    resets: int = 0


@dataclass
class SessionStats:
    """Aggregate session-lifecycle counters (chaos report material)."""

    resets: int = 0
    retry_attempts: int = 0
    reestablished: int = 0
    gave_up: int = 0
    #: engine iterations spent propagating withdrawals
    withdraw_iterations: int = 0
    #: engine iterations spent propagating re-advertisements
    readvertise_iterations: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (reports and assertions)."""
        return {
            "resets": self.resets,
            "retry_attempts": self.retry_attempts,
            "reestablished": self.reestablished,
            "gave_up": self.gave_up,
            "withdraw_iterations": self.withdraw_iterations,
            "readvertise_iterations": self.readvertise_iterations,
        }


class BgpSessionManager:
    """Session FSM over a converged :class:`BgpEngine`.

    Parameters
    ----------
    engine:
        The convergence engine whose speakers carry the sessions.
    scheduler:
        Anything satisfying :class:`repro.netsim.simulator.Scheduler`;
        retry attempts are scheduled as ordinary engine events.
    hold_time_s, keepalive_s:
        FSM timing: a reset is detected after the hold time (three
        keepalive intervals by convention — the defaults keep that
        3:1 ratio).
    base_retry_s, max_retry_s, max_retries:
        Bounded exponential backoff for re-establishment attempts:
        attempt ``k`` waits ``min(base * 2**k, max) * (1 + jitter*u)``.
    jitter, seed:
        Jitter fraction and the seed of the deterministic stream that
        draws ``u`` — same seed, same retry schedule.
    on_change:
        Optional callback ``(event, a, b, detail)`` fired on every
        session transition (the fault injector wires this to the trace).
    on_reconverge:
        Optional callback fired after each engine re-run (the chaos
        runner flushes forwarding caches here).
    """

    def __init__(
        self,
        engine: BgpEngine,
        scheduler,
        *,
        hold_time_s: float = 9.0,
        keepalive_s: float = 3.0,
        base_retry_s: float = 0.5,
        max_retry_s: float = 8.0,
        max_retries: int = 16,
        jitter: float = 0.1,
        seed: int = 0,
        on_change: Callable[[str, int, int, dict], None] | None = None,
        on_reconverge: Callable[[], None] | None = None,
    ) -> None:
        if hold_time_s <= 0 or keepalive_s <= 0:
            raise ValueError("hold_time_s and keepalive_s must be positive")
        if base_retry_s <= 0 or max_retry_s < base_retry_s:
            raise ValueError("need 0 < base_retry_s <= max_retry_s")
        self.engine = engine
        self.sched = scheduler
        self.hold_time_s = float(hold_time_s)
        self.keepalive_s = float(keepalive_s)
        self.base_retry_s = float(base_retry_s)
        self.max_retry_s = float(max_retry_s)
        self.max_retries = int(max_retries)
        self.jitter = float(jitter)
        self._rng = np.random.default_rng(0x5E551011 ^ seed)
        self.on_change = on_change
        self.on_reconverge = on_reconverge
        self.stats = SessionStats()
        #: (min_as, max_as) -> SessionInfo for every relationship edge
        self.sessions: dict[tuple[int, int], SessionInfo] = {}
        for as_id in sorted(engine.speakers):
            sp = engine.speakers[as_id]
            for nbr in sp.relationships:
                key = (min(as_id, nbr), max(as_id, nbr))
                if key not in self.sessions:
                    a, b = key
                    self.sessions[key] = SessionInfo(
                        a=a,
                        b=b,
                        rel_a_of_b=engine.speakers[a].relationships[b],
                        rel_b_of_a=engine.speakers[b].relationships[a],
                    )

    # ------------------------------------------------------------------
    def session(self, a: int, b: int) -> SessionInfo:
        """The session between ASes ``a`` and ``b`` (KeyError if none)."""
        return self.sessions[(min(a, b), max(a, b))]

    def all_established(self) -> bool:
        """True when every session is back in ESTABLISHED."""
        return all(s.state is SessionState.ESTABLISHED for s in self.sessions.values())

    # ------------------------------------------------------------------
    def reset(self, a: int, b: int, down_for_s: float) -> None:
        """Tear down the a<->b session; the peer stays dead ``down_for_s``.

        Takes effect immediately (the hold timer is assumed expired —
        fault scenarios schedule the reset event at detection time).
        Withdrawal propagation runs synchronously; re-establishment is
        scheduled as retry events on the simulation scheduler.
        """
        info = self.session(a, b)
        now = self.sched.current_time
        if info.state is not SessionState.ESTABLISHED:
            # Another fault hit a session that is already down: extend
            # the outage window; the in-flight retry chain will keep
            # failing until the new deadline passes.
            info.down_until = max(info.down_until, now + down_for_s)
            self._notify("reset-extended", info, {"down_until": info.down_until})
            return
        info.state = SessionState.CONNECT
        info.down_until = now + down_for_s
        info.attempts = 0
        info.resets += 1
        self.stats.resets += 1
        spk_a = self.engine.speakers[info.a]
        spk_b = self.engine.speakers[info.b]
        spk_a.relationships.pop(info.b, None)
        spk_b.relationships.pop(info.a, None)
        # Drop routes learned over the dead session before re-running:
        # the sweep exports from current RIBs, and a route whose next hop
        # is no longer a neighbor would trip export policy. Third-party
        # routes through the dead edge decay over the sweep itself —
        # that is the withdrawal propagating.
        spk_a.rib = {
            p: r for p, r in spk_a.rib.items() if r.is_local or r.next_hop_as != info.b
        }
        spk_b.rib = {
            p: r for p, r in spk_b.rib.items() if r.is_local or r.next_hop_as != info.a
        }
        iterations = self.engine.run()
        self.stats.withdraw_iterations += iterations
        self._notify("withdrawn", info, {"iterations": iterations})
        if self.on_reconverge is not None:
            self.on_reconverge()
        self._schedule_attempt(info, self._backoff_delay(0))

    def _schedule_attempt(self, info: SessionInfo, delay: float) -> None:
        self.sched.schedule_at(
            self.sched.current_time + delay, self._attempt, node=-1, args=(info,)
        )

    def _backoff_delay(self, attempt: int) -> float:
        base = min(self.base_retry_s * (2.0**attempt), self.max_retry_s)
        return base * (1.0 + self.jitter * float(self._rng.random()))

    def _attempt(self, info: SessionInfo) -> None:
        """One re-establishment attempt (scheduled event callback)."""
        if info.state is not SessionState.CONNECT:
            return  # re-established or given up by an overlapping chain
        now = self.sched.current_time
        if now < info.down_until:
            info.attempts += 1
            self.stats.retry_attempts += 1
            if info.attempts > self.max_retries:
                info.state = SessionState.DOWN
                self.stats.gave_up += 1
                self._notify("gave-up", info, {"attempts": info.attempts})
                return
            delay = self._backoff_delay(info.attempts)
            self._notify(
                "retry", info, {"attempt": info.attempts, "next_in_s": delay}
            )
            self._schedule_attempt(info, delay)
            return
        # Peer is back: restore the relationship edge on both speakers
        # and re-run the engine — the withdrawn routes re-advertise.
        self.engine.speakers[info.a].relationships[info.b] = info.rel_a_of_b
        self.engine.speakers[info.b].relationships[info.a] = info.rel_b_of_a
        iterations = self.engine.run()
        self.stats.readvertise_iterations += iterations
        info.state = SessionState.ESTABLISHED
        info.attempts = 0
        self.stats.reestablished += 1
        self._notify("reestablished", info, {"iterations": iterations})
        if self.on_reconverge is not None:
            self.on_reconverge()

    def _notify(self, event: str, info: SessionInfo, detail: dict) -> None:
        if self.on_change is not None:
            self.on_change(event, info.a, info.b, detail)
