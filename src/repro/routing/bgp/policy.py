"""Import and export routing policies (paper Section 5.1.1-5.1.2).

Export policy (derived directly from commercial relationships):

- **to a provider**: export local routes and customer routes only,
- **to a peer**: export local routes and customer routes only,
- **to a customer**: export everything.

Import policy: accept all loop-free routes and set local preference by the
next-hop AS relationship — customer > peer > provider (most ISPs maintain
preference at next-hop-AS granularity, step 4b of the paper's procedure).

Together these are the Gao-Rexford conditions; they make routing
*valley-free*: once a path goes up (customer->provider) and comes down, it
never goes up again, and peer links are crossed at most once at the top.
"""

from __future__ import annotations

from .attributes import LOCAL_PREF, Route

__all__ = [
    "PolicyError",
    "export_allowed",
    "import_local_pref",
    "learned_relationship",
    "is_valley_free",
]


class PolicyError(KeyError):
    """A route references an AS the local policy knows nothing about.

    Subclasses ``KeyError`` so existing callers that guarded the old
    bare-``KeyError`` behavior keep working, while the message now names
    the AS ids involved (the static screening in
    :mod:`repro.analysis.bgp_check` catches the same class of error
    before propagation runs).
    """

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return str(self.args[0]) if self.args else ""


def learned_relationship(route: Route, relationships: dict[int, str]) -> str:
    """How the AS holding ``route`` learned it: 'local', 'customer', 'peer',
    or 'provider' — determined by who the next-hop AS is to us.

    Raises :class:`PolicyError` when the route's next-hop AS is not in
    ``relationships`` (an unknown neighbor — a misconfigured policy or a
    corrupted RIB).
    """
    if route.is_local:
        return "local"
    try:
        return relationships[route.next_hop_as]
    except KeyError:
        known = sorted(relationships)
        raise PolicyError(
            f"route to prefix {route.prefix} (as_path {route.as_path}) has "
            f"next-hop AS {route.next_hop_as}, which is not a known neighbor "
            f"(known neighbor ASes: {known})"
        ) from None


def export_allowed(route: Route, to_relationship: str, relationships: dict[int, str]) -> bool:
    """May the route be announced to a neighbor of the given relationship?

    ``to_relationship`` is what the neighbor is *to us* ('provider',
    'peer', or 'customer'); ``relationships`` maps our neighbor AS ids to
    their relationship to us (used to classify how the route was learned).
    """
    if to_relationship == "customer":
        return True  # customers receive full tables
    learned = learned_relationship(route, relationships)
    # To providers and peers: only local and customer routes (no transit).
    return learned in ("local", "customer")


def import_local_pref(from_relationship: str) -> int:
    """Local preference assigned on import, by next-hop-AS relationship."""
    return LOCAL_PREF[from_relationship]


def is_valley_free(
    as_path: tuple[int, ...],
    origin_as: int,
    relationship_of: "callable",
) -> bool:
    """Check the valley-free property of a full AS-level path.

    ``as_path`` is ordered from the AS adjacent to the traffic source
    down to the origin (the BGP ``as_path`` of the source's best route,
    ending at ``origin_as``). ``relationship_of(a, b)`` must return what
    ``b`` is *to* ``a`` ('customer' / 'peer' / 'provider').

    Traffic flows source -> ... -> origin, i.e. along the path in order.
    Valley-free means the edge-type sequence matches
    ``(customer->provider)* (peer-peer)? (provider->customer)*`` when read
    in the traffic direction.
    """
    hops = list(as_path)
    if hops and hops[-1] != origin_as:
        hops.append(origin_as)
    if len(hops) < 2:
        return True
    # Phase 0: climbing (traffic goes to provider); after a peer edge or a
    # descent (to customer) only descents are allowed.
    phase = 0  # 0 = climbing, 1 = after peak
    for a, b in zip(hops, hops[1:]):
        rel = relationship_of(a, b)  # what b is to a
        if rel == "provider":
            if phase != 0:
                return False
        elif rel == "peer":
            if phase != 0:
                return False
            phase = 1
        elif rel == "customer":
            phase = 1
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown relationship {rel!r}")
    return True
