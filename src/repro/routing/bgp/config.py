"""Automatic BGP configuration from heuristic rules (paper Section 5.1.2).

Given a :class:`repro.topology.Network` whose AS domains carry business
relationships (produced by maBrite), this module instantiates the BGP
speakers with the heuristic import/export policies (steps 4-5) and can
render the configuration as a DML-like nested dict, mirroring how MaSSF
consumed its Domain Model Language input files.
"""

from __future__ import annotations

from typing import Any

from ...topology.models import ASTier, Network
from .attributes import LOCAL_PREF
from .engine import BgpEngine, BgpSpeaker

__all__ = ["build_speakers", "configure_bgp", "render_dml"]


def build_speakers(net: Network) -> dict[int, BgpSpeaker]:
    """One speaker per AS, relationships taken from the AS domains."""
    speakers: dict[int, BgpSpeaker] = {}
    for as_id, dom in net.as_domains.items():
        relationships: dict[int, str] = {}
        for p in dom.providers:
            relationships[p] = "provider"
        for c in dom.customers:
            relationships[c] = "customer"
        for p in dom.peers:
            relationships[p] = "peer"
        speakers[as_id] = BgpSpeaker(as_id=as_id, relationships=relationships)
    return speakers


def configure_bgp(net: Network, max_iterations: int = 1000) -> BgpEngine:
    """Build speakers from the network and run propagation to convergence.

    The AS-relationship structure is validated first
    (:func:`repro.analysis.validate_bgp_policy`), so an asymmetric or
    cyclic policy fails with a named diagnostic instead of diverging or
    crashing mid-propagation.
    """
    from ...analysis.bgp_check import validate_bgp_policy

    validate_bgp_policy(net)
    engine = BgpEngine(build_speakers(net))
    engine.run(max_iterations=max_iterations)
    return engine


def render_dml(net: Network) -> dict[str, Any]:
    """Render the auto-generated routing policy as a DML-like structure.

    The real MaSSF expressed policies in SSFNet's Domain Model Language;
    we keep the same information architecture (per-AS import preferences
    at next-hop-AS granularity, export filters per relationship, default
    routes for stubs) as a nested dict so it can be serialized or diffed.
    """
    doc: dict[str, Any] = {"Net": {"frequency": 1_000_000_000, "AS": []}}
    for as_id in sorted(net.as_domains):
        dom = net.as_domains[as_id]
        entry: dict[str, Any] = {
            "id": as_id,
            "tier": dom.tier.value,
            "ospf_area": 0,
            "routers": len(dom.routers),
            "hosts": len(dom.hosts),
            "bgp": {
                "import_policy": [
                    {
                        "neighbor_as": nbr,
                        "action": "permit",
                        "local_pref": LOCAL_PREF[dom.relationship_to(nbr)],
                        "relationship": dom.relationship_to(nbr),
                    }
                    for nbr in sorted(dom.neighbor_ases)
                ],
                "export_policy": [
                    {
                        "neighbor_as": nbr,
                        "announce": (
                            "all"
                            if dom.relationship_to(nbr) == "customer"
                            else "local+customer"
                        ),
                    }
                    for nbr in sorted(dom.neighbor_ases)
                ],
            },
        }
        if dom.tier is ASTier.STUB and dom.default_routes:
            primary = dom.default_routes[0]
            entry["default_route"] = {
                "egress_router": primary[0],
                "provider_as": primary[1],
            }
            if len(dom.default_routes) > 1:
                backup = dom.default_routes[1]
                entry["backup_route"] = {
                    "egress_router": backup[0],
                    "provider_as": backup[1],
                }
        doc["Net"]["AS"].append(entry)
    return doc
