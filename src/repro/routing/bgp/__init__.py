"""BGP4 policy routing: attributes, policies, decision process, engine,
and heuristic auto-configuration (paper Sections 5.1.1-5.1.2)."""

from .attributes import LOCAL_PREF, Origin, Route
from .beacon import BeaconExperiment, ConvergenceRecord, compare_ribs
from .config import build_speakers, configure_bgp, render_dml
from .decision import best_route, decision_key
from .engine import BgpEngine, BgpSpeaker
from .policy import (
    export_allowed,
    import_local_pref,
    is_valley_free,
    learned_relationship,
)
from .session import BgpSessionManager, SessionInfo, SessionState, SessionStats

__all__ = [
    "Route",
    "BeaconExperiment",
    "ConvergenceRecord",
    "compare_ribs",
    "Origin",
    "LOCAL_PREF",
    "decision_key",
    "best_route",
    "export_allowed",
    "import_local_pref",
    "learned_relationship",
    "is_valley_free",
    "BgpSpeaker",
    "BgpEngine",
    "BgpSessionManager",
    "SessionInfo",
    "SessionState",
    "SessionStats",
    "build_speakers",
    "configure_bgp",
    "render_dml",
]
