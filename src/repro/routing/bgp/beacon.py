"""BGP beacons: dynamic announce/withdraw experiments (paper Section 7).

The paper's proposed validation: "there is a Beacon project which
automatically announces/withdraws a prefix at a given time every day. And
we can observe what real BGP does to beacon activities from a public
observation point. Both of these studies can be simulated in MaSSF."

A :class:`BeaconExperiment` toggles one AS's prefix origination and
measures convergence: how many synchronous exchange rounds until the
routing system stabilizes, and which ASes changed their route to the
beacon prefix. Withdrawals typically converge no faster than
announcements (path hunting explores alternatives before giving up).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .attributes import Route
from .decision import decision_key
from .engine import BgpEngine

__all__ = ["ConvergenceRecord", "BeaconExperiment", "compare_ribs"]


@dataclass(frozen=True)
class ConvergenceRecord:
    """Outcome of one beacon event."""

    action: str  # 'announce' | 'withdraw'
    iterations: int
    #: ASes whose best route to the beacon prefix changed (incl. gained/lost)
    affected_ases: frozenset[int]
    #: ASes that can reach the beacon prefix after convergence
    reachable_from: frozenset[int]


class BeaconExperiment:
    """Announce/withdraw a beacon prefix and observe convergence.

    Parameters
    ----------
    engine:
        A converged :class:`BgpEngine`. The experiment mutates its
        speakers (origination flag) and re-runs propagation.
    beacon_as:
        The AS whose prefix plays the beacon.
    """

    def __init__(self, engine: BgpEngine, beacon_as: int) -> None:
        if beacon_as not in engine.speakers:
            raise ValueError(f"unknown AS {beacon_as}")
        self.engine = engine
        self.beacon_as = beacon_as
        self.history: list[ConvergenceRecord] = []

    def _snapshot(self) -> dict[int, Route | None]:
        return {
            a: sp.rib.get(self.beacon_as) for a, sp in self.engine.speakers.items()
        }

    def _apply(self, action: str) -> ConvergenceRecord:
        before = self._snapshot()
        speaker = self.engine.speakers[self.beacon_as]
        if action == "announce":
            speaker.originates = True
            speaker.rib[self.beacon_as] = Route.originate(self.beacon_as)
        elif action == "withdraw":
            speaker.originates = False
            speaker.rib.pop(self.beacon_as, None)
        else:
            raise ValueError(f"unknown beacon action {action!r}")

        iterations = self.engine.run()
        after = self._snapshot()

        affected = frozenset(
            a
            for a in before
            if (before[a] is None) != (after[a] is None)
            or (
                before[a] is not None
                and after[a] is not None
                and (
                    decision_key(before[a]) != decision_key(after[a])
                    or before[a].as_path != after[a].as_path
                )
            )
        )
        reachable = frozenset(a for a, r in after.items() if r is not None)
        record = ConvergenceRecord(
            action=action,
            iterations=iterations,
            affected_ases=affected,
            reachable_from=reachable,
        )
        self.history.append(record)
        return record

    def withdraw(self) -> ConvergenceRecord:
        """Withdraw the beacon prefix; routes to it must vanish everywhere."""
        return self._apply("withdraw")

    def announce(self) -> ConvergenceRecord:
        """(Re-)announce the beacon prefix; reachability must be restored."""
        return self._apply("announce")

    def run_schedule(self, actions: list[str]) -> list[ConvergenceRecord]:
        """Apply a sequence of 'announce'/'withdraw' events (the Beacon
        project toggles daily; here events are applied back to back)."""
        return [self._apply(a) for a in actions]


def compare_ribs(a: BgpEngine, b: BgpEngine) -> dict[str, float]:
    """Static BGP validation (paper Section 7): route-table similarity.

    Compares the best routes of two converged engines over the shared
    (AS, prefix) space. Returns the fraction of entries present in both,
    with the same next-hop AS, and with the same full AS path.
    """
    common_ases = set(a.speakers) & set(b.speakers)
    total = both = same_next_hop = same_path = 0
    for as_id in common_ases:
        prefixes = set(a.speakers[as_id].rib) | set(b.speakers[as_id].rib)
        for prefix in prefixes:
            total += 1
            ra = a.speakers[as_id].rib.get(prefix)
            rb = b.speakers[as_id].rib.get(prefix)
            if ra is None or rb is None:
                continue
            both += 1
            if ra.next_hop_as == rb.next_hop_as:
                same_next_hop += 1
            if ra.as_path == rb.as_path:
                same_path += 1
    if total == 0:
        return {"coverage": 1.0, "next_hop_agreement": 1.0, "path_agreement": 1.0}
    return {
        "coverage": both / total,
        "next_hop_agreement": same_next_hop / total,
        "path_agreement": same_path / total,
    }
