"""BGP route announcements and attributes (paper Section 5.1.1).

A route announcement carries the destination prefix (one prefix per AS in
this model), the AS path, and the attributes the decision process ranks:
local preference (set by import policy), origin type, and MED. ``next_hop_as``
is the neighbor the route was learned from — forwarding leaves the local
AS toward that neighbor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

__all__ = ["Origin", "Route", "LOCAL_PREF"]


class Origin(enum.IntEnum):
    """Route origin; lower is preferred in the decision process."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


#: Local preference by the relationship of the announcing neighbor
#: (Wang & Gao heuristic, paper Section 5.1.1): customer routes are most
#: preferred, then peers, then providers.
LOCAL_PREF = {"local": 200, "customer": 100, "peer": 90, "provider": 80}


@dataclass(frozen=True, order=False)
class Route:
    """An AS-level BGP route toward ``prefix``.

    ``as_path[0]`` is the neighbor that announced the route
    (== ``next_hop_as``); ``as_path[-1]`` is the origin AS (== ``prefix``
    in the one-prefix-per-AS model). A locally originated route has an
    empty path and ``next_hop_as == prefix``.
    """

    prefix: int
    as_path: tuple[int, ...]
    local_pref: int
    next_hop_as: int
    origin: Origin = Origin.IGP
    med: int = 0

    @classmethod
    def originate(cls, as_id: int) -> "Route":
        """The route an AS originates for its own prefix."""
        return cls(
            prefix=as_id,
            as_path=(),
            local_pref=LOCAL_PREF["local"],
            next_hop_as=as_id,
            origin=Origin.IGP,
        )

    @property
    def path_length(self) -> int:
        """AS-path length (the decision process's second criterion)."""
        return len(self.as_path)

    @property
    def is_local(self) -> bool:
        """True for a locally originated route (empty AS path)."""
        return not self.as_path

    def announced_by(self, announcer: int, local_pref: int) -> "Route":
        """The route as received from ``announcer`` (path prepended).

        The announcer prepends its own AS number; the receiver applies its
        import policy's local preference.
        """
        return replace(
            self,
            as_path=(announcer, *self.as_path),
            local_pref=local_pref,
            next_hop_as=announcer,
        )

    def contains_loop(self, as_id: int) -> bool:
        """BGP loop prevention: reject routes whose path already has us."""
        return as_id in self.as_path
