"""AS-level BGP4 path-vector propagation to convergence.

Each AS originates one prefix; announcements flow along AS relationships
subject to export policy, are filtered for loops and assigned local
preference on import, and the decision process selects one best route per
prefix. Propagation iterates synchronously until a fixed point — under
Gao-Rexford policies (which :mod:`repro.routing.bgp.policy` implements)
this always converges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...obs import names as obs_names
from ...obs.registry import get_registry
from ...obs.trace import get_tracer
from .attributes import Route
from .decision import best_route, decision_key
from .policy import export_allowed, import_local_pref

__all__ = ["BgpSpeaker", "BgpEngine"]


@dataclass
class BgpSpeaker:
    """One AS's BGP view: relationships and the current RIB."""

    as_id: int
    #: neighbor as_id -> what the neighbor is to us ('provider'|'customer'|'peer')
    relationships: dict[int, str]
    #: best route per prefix (the loc-RIB)
    rib: dict[int, Route] = field(default_factory=dict)
    #: whether this AS currently announces its own prefix (beacon
    #: experiments toggle this to study dynamic BGP behavior)
    originates: bool = True

    def __post_init__(self) -> None:
        if self.originates:
            self.rib.setdefault(self.as_id, Route.originate(self.as_id))

    def exports_to(self, neighbor: int) -> list[Route]:
        """Routes this speaker announces to ``neighbor`` under export policy.

        Sorted by prefix so the announcement order is a function of RIB
        *content*, never of dict insertion history — a precondition for
        sharding speakers across LPs (simlint SIM202).
        """
        rel = self.relationships[neighbor]
        return [
            r
            for _, r in sorted(self.rib.items())
            if export_allowed(r, rel, self.relationships)
        ]


class BgpEngine:
    """Synchronous path-vector computation over a set of speakers.

    Parameters
    ----------
    speakers:
        ``{as_id: BgpSpeaker}`` with mutually consistent relationship maps
        (if B is A's customer then A is B's provider).
    """

    def __init__(self, speakers: dict[int, BgpSpeaker]) -> None:
        self.speakers = speakers
        self._converged = False
        self.iterations = 0
        # Observability hook points (resolved once; writes are guarded).
        reg = get_registry()
        self._obs = reg
        self._obs_sent = reg.counter(obs_names.BGP_UPDATES_SENT)
        self._obs_received = reg.counter(obs_names.BGP_UPDATES_RECEIVED)
        self._obs_decisions = reg.counter(obs_names.BGP_DECISIONS)
        self._obs_iterations = reg.counter(obs_names.BGP_ITERATIONS)
        self._obs_convergence = reg.timer(obs_names.BGP_CONVERGENCE)
        # Structured trace hook point: convergence spans with iteration
        # counts land in the trace buffer's span channel.
        self._trace = get_tracer()
        self._validate()

    def _validate(self) -> None:
        inverse = {"provider": "customer", "customer": "provider", "peer": "peer"}
        for as_id, sp in self.speakers.items():
            if sp.as_id != as_id:
                raise ValueError("speaker key/id mismatch")
            for nbr, rel in sp.relationships.items():
                other = self.speakers.get(nbr)
                if other is None:
                    raise ValueError(f"AS {as_id} references unknown neighbor {nbr}")
                if other.relationships.get(as_id) != inverse[rel]:
                    raise ValueError(
                        f"inconsistent relationship AS{as_id}<->AS{nbr}: "
                        f"{rel} vs {other.relationships.get(as_id)}"
                    )

    def _iterate_once(self) -> bool:
        """One synchronous exchange round; returns True if any RIB changed."""
        # Gather announcements against the *current* RIBs, then apply —
        # a synchronous (Jacobi) sweep keeps the result order-independent.
        # Every dict sweep below is sorted: with best_route's strict total
        # order the outcome is identical, and route installation no longer
        # depends on per-process dict insertion order (simlint SIM202).
        inbox: dict[int, list[Route]] = {a: [] for a in sorted(self.speakers)}
        for as_id, sp in sorted(self.speakers.items()):
            for nbr, rel_of_nbr in sorted(sp.relationships.items()):
                for route in sp.exports_to(nbr):
                    if route.contains_loop(nbr) or route.prefix == nbr:
                        continue
                    # The receiver classifies us by *their* relationship map.
                    rel_of_us = self.speakers[nbr].relationships[as_id]
                    received = route.announced_by(as_id, import_local_pref(rel_of_us))
                    inbox[nbr].append(received)
                    self._obs_sent.inc()

        changed = False
        for as_id, sp in sorted(self.speakers.items()):
            candidates: dict[int, list[Route]] = {}
            for route in inbox[as_id]:
                if route.contains_loop(as_id):
                    continue
                candidates.setdefault(route.prefix, []).append(route)
                self._obs_received.inc()
            new_rib: dict[int, Route] = (
                {as_id: Route.originate(as_id)} if sp.originates else {}
            )
            for prefix, cands in sorted(candidates.items()):
                if prefix == as_id:
                    continue
                chosen = best_route(cands)
                self._obs_decisions.inc()
                if chosen is not None:
                    new_rib[prefix] = chosen
            if _rib_differs(sp.rib, new_rib):
                changed = True
            sp.rib = new_rib
        return changed

    def run(self, max_iterations: int = 1000) -> int:
        """Propagate to a fixed point; returns iteration count.

        Raises ``RuntimeError`` if no fixed point is reached (cannot happen
        with consistent Gao-Rexford policies; the guard catches bugs and
        hand-built pathological policies).
        """
        token = self._obs_convergence.start()
        trace_token = self._trace.span_begin()
        for i in range(max_iterations):
            if not self._iterate_once():
                self._converged = True
                self.iterations = i + 1
                self._obs_convergence.stop(token)
                self._trace.span_end(
                    trace_token,
                    "bgp.convergence",
                    iterations=self.iterations,
                    speakers=len(self.speakers),
                )
                self._obs_iterations.inc(self.iterations)
                return self.iterations
        raise RuntimeError(f"BGP did not converge within {max_iterations} iterations")

    @property
    def converged(self) -> bool:
        """True once :meth:`run` reached a fixed point."""
        return self._converged

    # ------------------------------------------------------------------
    # Queries (valid after run())
    # ------------------------------------------------------------------
    def route(self, from_as: int, prefix: int) -> Route | None:
        """The best route ``from_as`` holds for ``prefix`` (None if none)."""
        return self.speakers[from_as].rib.get(prefix)

    def next_hop_as(self, from_as: int, prefix: int) -> int | None:
        """The neighbor AS traffic for ``prefix`` leaves through."""
        r = self.route(from_as, prefix)
        if r is None or r.is_local:
            return None
        return r.next_hop_as

    def as_path(self, from_as: int, prefix: int) -> tuple[int, ...] | None:
        """Full AS-level forwarding path ``(from_as, ..., prefix)``.

        Follows next-hop ASes RIB-by-RIB (the actual forwarding behavior),
        which coincides with the best route's ``as_path`` at convergence.
        """
        if from_as == prefix:
            return (from_as,)
        path = [from_as]
        current = from_as
        for _ in range(len(self.speakers) + 1):
            nxt = self.next_hop_as(current, prefix)
            if nxt is None:
                return None
            path.append(nxt)
            if nxt == prefix:
                return tuple(path)
            current = nxt
        return None  # pragma: no cover - loop guard

    def reachability_matrix(self) -> dict[int, set[int]]:
        """``{as_id: set of reachable prefixes}`` — in policy routing,
        connectivity does not equal reachability (paper Section 1)."""
        return {a: set(sp.rib) for a, sp in self.speakers.items()}


def _rib_differs(a: dict[int, Route], b: dict[int, Route]) -> bool:
    if a.keys() != b.keys():
        return True
    return any(decision_key(a[p]) != decision_key(b[p]) or a[p].as_path != b[p].as_path for p in a)
