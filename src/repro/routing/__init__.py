"""Routing: OSPF intra-AS shortest paths, BGP4 inter-AS policy routing,
and the composed forwarding plane used by the packet simulator."""

from . import bgp
from .fib import ForwardingPlane
from .ospf import OspfRouting, ospf_link_metric

__all__ = ["OspfRouting", "ospf_link_metric", "ForwardingPlane", "bgp"]
