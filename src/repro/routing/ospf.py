"""OSPF-style intra-AS shortest path routing.

MaSSF routes inside an AS (and the whole network in the single-AS
experiments) with shortest path first. We implement per-destination
reverse shortest-path trees with Dijkstra over link latency (plus a tiny
bandwidth tie-break so fat pipes win among equal-latency paths), computed
lazily and cached — large networks only ever need trees toward actual
traffic destinations and border routers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..topology.models import Network

__all__ = ["OspfRouting", "ospf_link_metric"]


def ospf_link_metric(latency_s: float, bandwidth_bps: float) -> float:
    """Link metric: propagation latency with a capacity tie-break.

    The dominant term is latency (shortest-delay paths, as in the paper's
    "shortest path routing"); the ``1/bandwidth`` epsilon prefers higher
    capacity among equal-latency alternatives and makes trees unique in
    practice.
    """
    return latency_s + 1e-3 / bandwidth_bps


class OspfRouting:
    """Shortest-path next-hop provider for one routing domain.

    Parameters
    ----------
    net:
        The full network.
    members:
        Node ids belonging to this OSPF domain (routers and hosts of one
        AS). Paths never leave the member set.
    """

    def __init__(self, net: Network, members: list[int]) -> None:
        self.net = net
        self.members = list(members)
        self._member_set = set(members)
        # destination -> {node: next_hop_node}
        self._trees: dict[int, dict[int, int]] = {}
        # Fault state (repro.faults): links/nodes currently out of service.
        # Both sets are empty on a healthy network, so the tree build pays
        # only a truthiness check per edge and next_hop() is unchanged.
        self._down_links: set[int] = set()
        self._down_nodes: set[int] = set()
        #: topology-state changes that invalidated the cached trees
        self.invalidations = 0
        #: reverse SPTs built since construction (re-convergence signal)
        self.trees_built = 0

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._member_set

    def _build_tree(self, dest: int) -> dict[int, int]:
        """Reverse SPT: next hop from every member toward ``dest``.

        Links are symmetric, so Dijkstra *from* the destination gives the
        shortest distance from every node to it; the next hop of ``v`` is
        the neighbor through which ``v`` was finalized.
        """
        if dest not in self._member_set:
            raise KeyError(f"destination {dest} not in this OSPF domain")
        self.trees_built += 1
        if self._down_nodes and dest in self._down_nodes:
            return {}
        down_links = self._down_links
        down_nodes = self._down_nodes
        dist: dict[int, float] = {dest: 0.0}
        next_hop: dict[int, int] = {}
        heap: list[tuple[float, int, int]] = [(0.0, dest, dest)]
        done: set[int] = set()
        while heap:
            d, v, toward = heapq.heappop(heap)
            if v in done:
                continue
            done.add(v)
            if v != dest:
                next_hop[v] = toward
            for u, link in self.net.neighbors(v):
                if u not in self._member_set or u in done:
                    continue
                if down_links and link.link_id in down_links:
                    continue
                if down_nodes and u in down_nodes:
                    continue
                nd = d + ospf_link_metric(link.latency_s, link.bandwidth_bps)
                if nd < dist.get(u, np.inf):
                    dist[u] = nd
                    # From u, the first hop toward dest is v itself.
                    heapq.heappush(heap, (nd, u, v))
        return next_hop

    def next_hop(self, node: int, dest: int) -> int | None:
        """Next node on the shortest path from ``node`` to ``dest``.

        Returns ``None`` when ``dest`` is unreachable within the domain
        or ``node == dest``.
        """
        if node == dest:
            return None
        tree = self._trees.get(dest)
        if tree is None:
            tree = self._build_tree(dest)
            self._trees[dest] = tree
        return tree.get(node)

    def distance(self, node: int, dest: int) -> float:
        """Shortest-path metric distance (inf if unreachable)."""
        if node == dest:
            return 0.0
        total = 0.0
        current = node
        guard = len(self.members) + 1
        while current != dest and guard > 0:
            guard -= 1
            nxt = self.next_hop(current, dest)
            if nxt is None:
                return float("inf")
            link = self.net.link_between(current, nxt)
            assert link is not None
            total += ospf_link_metric(link.latency_s, link.bandwidth_bps)
            current = nxt
        return total if current == dest else float("inf")

    def path(self, node: int, dest: int) -> list[int] | None:
        """Full node path ``[node, ..., dest]`` (None if unreachable)."""
        path = [node]
        current = node
        guard = len(self.members) + 1
        while current != dest:
            guard -= 1
            if guard < 0:
                return None
            nxt = self.next_hop(current, dest)
            if nxt is None:
                return None
            path.append(nxt)
            current = nxt
        return path

    def cached_destinations(self) -> list[int]:
        """Destinations whose reverse SPTs have been built (cache view)."""
        return list(self._trees)

    # ------------------------------------------------------------------
    # Topology-state changes (repro.faults recovery path)
    # ------------------------------------------------------------------
    def set_link_state(self, link_id: int, up: bool) -> None:
        """Mark a link in or out of service; recompute routes lazily.

        An out-of-service link is excluded from subsequent tree builds —
        the OSPF analogue of flooding an LSA and re-running SPF. The
        cached trees are invalidated so the next ``next_hop`` query
        recomputes against the current topology state.
        """
        changed = (link_id in self._down_links) if up else (link_id not in self._down_links)
        if up:
            self._down_links.discard(link_id)
        else:
            self._down_links.add(link_id)
        if changed:
            self._invalidate()

    def set_node_state(self, node_id: int, up: bool) -> None:
        """Mark a router/host in or out of service (crash/restart)."""
        changed = (node_id in self._down_nodes) if up else (node_id not in self._down_nodes)
        if up:
            self._down_nodes.discard(node_id)
        else:
            self._down_nodes.add(node_id)
        if changed:
            self._invalidate()

    def _invalidate(self) -> None:
        self._trees.clear()
        self.invalidations += 1
