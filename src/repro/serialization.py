"""Persistence: save/load networks, traffic profiles, mappings, results.

Networks serialize to a JSON document (nodes, links, AS domains — the
same information architecture as MaSSF's DML input files); traffic
profiles to compressed ``.npz``; mappings and experiment results to JSON.
Everything round-trips: a saved network re-loads into an identical
simulation input, so expensive generated topologies and profiling runs
can be reused across sessions.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Any

import numpy as np

from .core.approaches import Approach
from .core.mapping import NetworkMapping
from .profilers.traffic import TrafficProfile
from .topology.models import ASTier, Network, NodeKind

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
    "save_profile",
    "load_profile",
    "mapping_to_dict",
    "save_mapping",
    "load_mapping_assignment",
    "result_to_dict",
    "save_result",
    "encode_payload",
    "decode_payload",
    "encode_mail_batch",
    "decode_mail_batch",
    "encode_snapshot",
    "decode_snapshot",
    "encode_migration",
    "decode_migration",
    "encode_checkpoint",
    "decode_checkpoint",
    "encode_replay_buffer",
    "decode_replay_buffer",
    "PayloadFormatError",
]

FORMAT_VERSION = 1

#: Wire-format version for cross-process payloads (mail batches, worker
#: configs, result envelopes). Bumped whenever the tuple layout of a mail
#: item changes, so a version skew between controller and worker fails
#: loudly instead of mis-decoding.
WIRE_VERSION = 1

#: Magic prefix identifying a repro cross-process payload.
_WIRE_MAGIC = b"RPW"


class PayloadFormatError(ValueError):
    """A cross-process payload had the wrong magic or wire version."""


# ----------------------------------------------------------------------
# Network
# ----------------------------------------------------------------------
def network_to_dict(net: Network) -> dict[str, Any]:
    """A JSON-serializable description of the whole network."""
    return {
        "format_version": FORMAT_VERSION,
        "nodes": [
            {
                "id": n.node_id,
                "kind": n.kind.value,
                "as_id": n.as_id,
                "position": list(n.position),
            }
            for n in net.nodes
        ],
        "links": [
            {
                "id": l.link_id,
                "u": l.u,
                "v": l.v,
                "bandwidth_bps": l.bandwidth_bps,
                "latency_s": l.latency_s,
                "queue_bytes": l.queue_bytes,
            }
            for l in net.links
        ],
        "as_domains": [
            {
                "as_id": d.as_id,
                "tier": d.tier.value,
                "routers": list(d.routers),
                "hosts": list(d.hosts),
                "providers": sorted(d.providers),
                "customers": sorted(d.customers),
                "peers": sorted(d.peers),
                "border_links": {
                    str(nbr): [list(pair) for pair in pairs]
                    for nbr, pairs in d.border_links.items()
                },
                "default_routes": [list(r) for r in d.default_routes],
            }
            for d in net.as_domains.values()
        ],
    }


def network_from_dict(doc: dict[str, Any]) -> Network:
    """Rebuild a :class:`Network` from :func:`network_to_dict` output."""
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported network format version {version!r}")
    net = Network()
    for entry in doc["nodes"]:
        node_id = net.add_node(
            NodeKind(entry["kind"]),
            as_id=entry["as_id"],
            position=tuple(entry["position"]),
        )
        if node_id != entry["id"]:
            raise ValueError("node ids must be dense and ordered")
    for entry in doc["links"]:
        net.add_link(
            entry["u"],
            entry["v"],
            entry["bandwidth_bps"],
            entry["latency_s"],
            entry["queue_bytes"],
        )
    for entry in doc["as_domains"]:
        dom = net.add_as(entry["as_id"], ASTier(entry["tier"]))
        dom.routers = list(entry["routers"])
        dom.hosts = list(entry["hosts"])
        dom.providers = set(entry["providers"])
        dom.customers = set(entry["customers"])
        dom.peers = set(entry["peers"])
        dom.border_links = {
            int(nbr): [tuple(pair) for pair in pairs]
            for nbr, pairs in entry["border_links"].items()
        }
        dom.default_routes = [tuple(r) for r in entry["default_routes"]]
    return net


def save_network(net: Network, path: str | Path) -> None:
    """Write a network to a JSON file."""
    Path(path).write_text(json.dumps(network_to_dict(net)))


def load_network(path: str | Path) -> Network:
    """Read a network from a JSON file written by :func:`save_network`."""
    return network_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Traffic profiles
# ----------------------------------------------------------------------
def save_profile(profile: TrafficProfile, path: str | Path) -> None:
    """Write a traffic profile to compressed ``.npz``."""
    np.savez_compressed(
        Path(path),
        node_events=profile.node_events,
        link_bytes=profile.link_bytes,
        link_packets=profile.link_packets,
        duration_s=np.asarray(profile.duration_s),
    )


def load_profile(path: str | Path) -> TrafficProfile:
    """Read a traffic profile from ``.npz``."""
    with np.load(Path(path)) as data:
        return TrafficProfile(
            node_events=data["node_events"],
            link_bytes=data["link_bytes"],
            link_packets=data["link_packets"],
            duration_s=float(data["duration_s"]),
        )


# ----------------------------------------------------------------------
# Mappings and results
# ----------------------------------------------------------------------
def mapping_to_dict(mapping: NetworkMapping) -> dict[str, Any]:
    """A JSON-serializable summary of a mapping (assignment + scores)."""
    ev = mapping.evaluation
    return {
        "format_version": FORMAT_VERSION,
        "approach": mapping.approach.value,
        "num_engines": mapping.num_engines,
        "assignment": mapping.assignment.tolist(),
        "tmll_s": mapping.tmll_s,
        "evaluation": {
            "mll_s": ev.mll_s if np.isfinite(ev.mll_s) else None,
            "es": ev.es,
            "ec": ev.ec,
            "efficiency": ev.efficiency,
            "predicted_imbalance": ev.predicted_imbalance,
            "edge_cut": ev.edge_cut,
        },
        "sweep": [
            {
                "tmll_s": rec.tmll_s,
                "coarse_vertices": rec.coarse_vertices,
                "efficiency": rec.evaluation.efficiency,
            }
            for rec in mapping.sweep
        ],
    }


def save_mapping(mapping: NetworkMapping, path: str | Path) -> None:
    """Write a mapping to a JSON file."""
    Path(path).write_text(json.dumps(mapping_to_dict(mapping)))


def load_mapping_assignment(path: str | Path) -> tuple[Approach, np.ndarray, int]:
    """Load the deployable part of a saved mapping: the approach, the
    node -> engine assignment, and the engine count."""
    doc = json.loads(Path(path).read_text())
    if doc.get("format_version") != FORMAT_VERSION:
        raise ValueError("unsupported mapping format version")
    return (
        Approach(doc["approach"]),
        np.asarray(doc["assignment"], dtype=np.int64),
        int(doc["num_engines"]),
    )


def result_to_dict(result) -> dict[str, Any]:
    """Serialize an :class:`repro.experiments.ExperimentResult` summary."""
    return {
        "format_version": FORMAT_VERSION,
        "network_kind": result.network_kind,
        "app_kind": result.app_kind,
        "scale": result.scale_name,
        "num_engines": result.num_engines,
        "total_events": result.total_events,
        "duration_s": result.duration_s,
        "http_responses": getattr(result, "http_responses", 0),
        "apps_finished": getattr(result, "apps_finished", False),
        "rows": [row.as_dict() for row in result.rows],
    }


def save_result(result, path: str | Path) -> None:
    """Write an experiment-result summary to a JSON file."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


# ----------------------------------------------------------------------
# Cross-process wire payloads (multi-process conservative backend)
# ----------------------------------------------------------------------
def encode_payload(obj: Any) -> bytes:
    """Serialize ``obj`` for transport across a process boundary.

    Every object the multi-process backend ships between controller and
    workers — worker configs, barrier mail, result envelopes — goes
    through this one choke point: a versioned, magic-prefixed pickle.
    The version header turns controller/worker skew into a
    :class:`PayloadFormatError` instead of silent corruption, and the
    single entry point is what the SIM203 closure rule protects — only
    module-level functions and bound methods of picklable objects
    survive this call, never lambdas or nested closures.
    """
    body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _WIRE_MAGIC + bytes([WIRE_VERSION]) + body


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`encode_payload`, validating magic and version."""
    if len(data) < len(_WIRE_MAGIC) + 1 or not data.startswith(_WIRE_MAGIC):
        raise PayloadFormatError(
            "not a repro wire payload (bad magic); controller and worker "
            "must both serialize through repro.serialization"
        )
    version = data[len(_WIRE_MAGIC)]
    if version != WIRE_VERSION:
        raise PayloadFormatError(
            f"wire version mismatch: payload v{version}, this process "
            f"speaks v{WIRE_VERSION}"
        )
    return pickle.loads(data[len(_WIRE_MAGIC) + 1 :])


def encode_mail_batch(items: list[tuple]) -> bytes:
    """Serialize one barrier window's cross-shard mail for one destination.

    Each item is ``(target_lp, node, time, key, handler_name, args)``
    with ``key`` the event's ``(epoch, lane, counter)`` tiebreak tuple.
    Handlers cross the boundary *by registered name*, never as code
    objects — the receiving shard resolves the name against its own
    replica of the scenario, which is what keeps the wire format small
    and the closure rule enforceable.
    """
    return encode_payload(list(items))


def decode_mail_batch(data: bytes) -> list[tuple]:
    """Inverse of :func:`encode_mail_batch`."""
    items = decode_payload(data)
    if not isinstance(items, list):
        raise PayloadFormatError("mail batch payload must decode to a list")
    return items


def encode_snapshot(snapshot: Any) -> bytes:
    """Serialize an observability snapshot for the control plane.

    Registry/trace snapshots (:mod:`repro.obs.distributed`) ride the
    worker result envelope or, with incremental obs on, a per-window
    delta slot — never barrier mail, so a disabled-obs run ships zero
    snapshot bytes (``tests/test_obs_overhead.py`` proves it). Same
    versioned wire framing as every other cross-process payload.
    """
    return encode_payload(snapshot)


def decode_snapshot(data: bytes) -> Any:
    """Inverse of :func:`encode_snapshot`."""
    return decode_payload(data)


def encode_migration(payload: dict) -> bytes:
    """Serialize one LP's migration payload for the control plane.

    The payload is ``{"lp": int, "events": [...], "state": Any}`` —
    the LP's still-pending queue events (mail-item tuples carrying their
    original ``(epoch, lane, counter)`` keys and handler wire names) plus
    whatever opaque per-LP dynamics the scenario's ``capture_lp`` hook
    returned. Like obs snapshots, migrations ride the worker pipes
    (control plane), never barrier mail — a non-rebalanced run ships
    zero migration bytes.
    """
    if not isinstance(payload, dict) or "lp" not in payload:
        raise PayloadFormatError("migration payload must be a dict with 'lp'")
    return encode_payload(payload)


def decode_migration(data: bytes) -> dict:
    """Inverse of :func:`encode_migration`."""
    payload = decode_payload(data)
    if not isinstance(payload, dict) or "lp" not in payload:
        raise PayloadFormatError("migration payload must decode to a dict with 'lp'")
    return payload


#: Keys every checkpoint envelope must carry. ``engine`` holds the shard
#: engine's replayable core (queues, clocks, tiebreak counters);
#: ``shard_state`` whatever the scenario's ``capture_shard`` hook returns.
_CHECKPOINT_KEYS = ("shard_id", "window_index", "engine")


def encode_checkpoint(payload: dict) -> bytes:
    """Serialize one shard's barrier checkpoint for the control plane.

    The payload is a plain dict with at least ``shard_id``,
    ``window_index``, and ``engine`` (see
    :mod:`repro.engine.recovery` for the full structure). Checkpoints
    ride the worker pipes — control plane, never barrier mail — so a
    run with checkpointing disabled ships zero extra mail bytes, and the
    encoding is deterministic: the same shard state captured twice must
    produce byte-identical blobs (the digest-stability proof).
    """
    if not isinstance(payload, dict) or any(k not in payload for k in _CHECKPOINT_KEYS):
        raise PayloadFormatError(
            f"checkpoint payload must be a dict with keys {_CHECKPOINT_KEYS}"
        )
    return encode_payload(payload)


def decode_checkpoint(data: bytes) -> dict:
    """Inverse of :func:`encode_checkpoint`."""
    payload = decode_payload(data)
    if not isinstance(payload, dict) or any(k not in payload for k in _CHECKPOINT_KEYS):
        raise PayloadFormatError(
            f"checkpoint payload must decode to a dict with keys {_CHECKPOINT_KEYS}"
        )
    return payload


def encode_replay_buffer(entries: list[tuple]) -> bytes:
    """Serialize the retained-mail replay buffer for a respawned worker.

    Each entry is ``(window_index, inbound_payloads)`` — exactly the
    mail the controller sent (or would have sent) the dead worker at
    that barrier, so the respawned incarnation can re-execute the
    missed windows privately before rejoining the live protocol.
    Migration plans never appear here: recovery and online rebalancing
    are mutually exclusive by construction.
    """
    if not isinstance(entries, list):
        raise PayloadFormatError("replay buffer payload must be a list")
    return encode_payload(list(entries))


def decode_replay_buffer(data: bytes) -> list[tuple]:
    """Inverse of :func:`encode_replay_buffer`."""
    entries = decode_payload(data)
    if not isinstance(entries, list):
        raise PayloadFormatError("replay buffer payload must decode to a list")
    return entries
