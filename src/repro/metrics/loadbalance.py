"""Load imbalance metric (paper Section 4.1).

"Assuming the simulation kernel event rates are k1..kn for the n nodes
used by the simulation engine, the load imbalance is normalized by the
standard deviation of {k}" — i.e. the coefficient of variation of the
per-engine event rates: 0 is perfect balance, larger is worse.
"""

from __future__ import annotations

import numpy as np

__all__ = ["load_imbalance", "max_over_mean"]


def load_imbalance(event_rates: np.ndarray) -> float:
    """Normalized standard deviation (CV) of per-engine event rates."""
    rates = np.asarray(event_rates, dtype=np.float64)
    if rates.size == 0:
        raise ValueError("need at least one engine node")
    mean = rates.mean()
    if mean == 0:
        return 0.0
    return float(rates.std() / mean)


def max_over_mean(event_rates: np.ndarray) -> float:
    """Max/mean load ratio (>= 1); the inverse of the paper's Ec factor."""
    rates = np.asarray(event_rates, dtype=np.float64)
    if rates.size == 0:
        raise ValueError("need at least one engine node")
    mean = rates.mean()
    if mean == 0:
        return 1.0
    return float(rates.max() / mean)
