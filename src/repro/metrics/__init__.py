"""Evaluation metrics: load imbalance and parallel efficiency."""

from .efficiency import parallel_efficiency, speedup
from .loadbalance import load_imbalance, max_over_mean

__all__ = ["load_imbalance", "max_over_mean", "parallel_efficiency", "speedup"]
