"""Parallel efficiency (paper Section 4.1).

``PE(N, L) = Tseq(L) / (N * T(L, N))`` with the sequential time
approximated as ``Tseq = TotalEventNumber / MaximalEventRateOnEachNode``
because the networks are too large to simulate on one machine.
"""

from __future__ import annotations

__all__ = ["parallel_efficiency", "speedup"]


def parallel_efficiency(tseq_s: float, num_nodes: int, parallel_time_s: float) -> float:
    """``Tseq / (N * T)``; 1.0 is ideal."""
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if parallel_time_s <= 0:
        raise ValueError("parallel time must be positive")
    if tseq_s < 0:
        raise ValueError("sequential time must be non-negative")
    return tseq_s / (num_nodes * parallel_time_s)


def speedup(tseq_s: float, parallel_time_s: float) -> float:
    """``Tseq / T`` — ideal is ``N``."""
    if parallel_time_s <= 0:
        raise ValueError("parallel time must be positive")
    return tseq_s / parallel_time_s
