"""Process-global instrument registry for runtime observability.

The registry is the single rendezvous point between *instrumented code*
(the engines, the packet simulator, BGP) and *consumers* (the profile
bridge, exporters, the ``trace`` CLI). Design constraints, in order:

1. **Cheap when disabled.** Instrumented code resolves its instruments
   once, at construction time (that is where the name -> instrument
   dict lookup happens); every hot-path write afterwards is a single
   attribute load plus a boolean guard. A disabled registry therefore
   costs one predictable branch per hook point and performs *no state
   writes at all* (``tests/test_obs_overhead.py`` enforces this).
2. **Zero dependencies.** Only the standard library and numpy.
3. **Deterministic.** Counters, gauges, histograms, and series record
   *simulated* quantities and are exactly reproducible; only span
   timers read the wall clock (:mod:`repro.obs.timers` is the one
   sanctioned call site of ``time.perf_counter`` — simlint rule SIM106
   flags any other).

Instruments are accumulated per process; call :meth:`Registry.reset`
(or use :func:`observed_run`) to scope a snapshot to one run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .counters import BinnedSeries, Counter, Histogram, MaxGauge, VectorCounter
from .timers import SpanTimer

__all__ = [
    "Registry",
    "get_registry",
    "enable",
    "disable",
    "reset",
    "observed_run",
    "DEFAULT_BIN_S",
]

#: Default simulated-time bin width of per-node event-rate series
#: (Figure 3's "load variation" granularity at laptop scales).
DEFAULT_BIN_S = 0.5


class Registry:
    """Named instruments behind one enable flag.

    Parameters
    ----------
    enabled:
        Initial state; the process-global registry starts disabled so
        un-instrumented workloads pay only the guard branch.
    bin_s:
        Default bin width (simulated seconds) for :class:`BinnedSeries`
        instruments created without an explicit ``bin_s``.
    """

    def __init__(self, enabled: bool = False, bin_s: float = DEFAULT_BIN_S) -> None:
        if bin_s <= 0:
            raise ValueError("bin_s must be positive")
        self.enabled = enabled
        self.bin_s = bin_s
        self._counters: dict[str, Counter] = {}
        self._vectors: dict[str, VectorCounter] = {}
        self._gauges: dict[str, MaxGauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timers: dict[str, SpanTimer] = {}
        self._series: dict[str, BinnedSeries] = {}

    # ------------------------------------------------------------------
    # State control
    # ------------------------------------------------------------------
    def enable(self) -> None:
        """Turn instrumentation on (writes start recording)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn instrumentation off (writes become no-ops)."""
        self.enabled = False

    def reset(self) -> None:
        """Zero every instrument, keeping registrations and sizes."""
        for group in self._groups():
            for inst in group.values():
                inst.reset()

    def clear(self) -> None:
        """Drop every instrument registration entirely."""
        for group in self._groups():
            group.clear()

    def _groups(self) -> tuple[dict, ...]:
        return (
            self._counters,
            self._vectors,
            self._gauges,
            self._histograms,
            self._timers,
            self._series,
        )

    # ------------------------------------------------------------------
    # Instrument factories (idempotent by name; dict lookup happens here,
    # at construction time, never on the write path)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the scalar monotonic counter ``name``."""
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name, self)
        return inst

    def vector_counter(self, name: str, size: int) -> VectorCounter:
        """Get or create the fixed-size vector counter ``name``.

        A pre-existing instrument with a *different* size is replaced
        (a new simulation over a different topology owns the name); the
        caller is expected to :meth:`reset` between runs it wants to
        keep separate.
        """
        inst = self._vectors.get(name)
        if inst is None or inst.size != size:
            inst = self._vectors[name] = VectorCounter(name, self, size)
        return inst

    def max_gauge(self, name: str, size: int) -> MaxGauge:
        """Get or create the per-index high-water-mark gauge ``name``."""
        inst = self._gauges.get(name)
        if inst is None or inst.size != size:
            inst = self._gauges[name] = MaxGauge(name, self, size)
        return inst

    def histogram(self, name: str, bounds: tuple[float, ...]) -> Histogram:
        """Get or create a histogram with the given upper bucket bounds."""
        inst = self._histograms.get(name)
        if inst is None or inst.bounds != tuple(bounds):
            inst = self._histograms[name] = Histogram(name, self, bounds)
        return inst

    def timer(self, name: str) -> SpanTimer:
        """Get or create the wall-clock span timer ``name``."""
        inst = self._timers.get(name)
        if inst is None:
            inst = self._timers[name] = SpanTimer(name, self)
        return inst

    def series(self, name: str, size: int, bin_s: float | None = None) -> BinnedSeries:
        """Get or create a per-index binned time series (Figure 3 data)."""
        bin_s = bin_s if bin_s is not None else self.bin_s
        inst = self._series.get(name)
        if inst is None or inst.size != size or inst.bin_s != bin_s:
            inst = self._series[name] = BinnedSeries(name, self, size, bin_s)
        return inst

    # ------------------------------------------------------------------
    # Read access (consumers)
    # ------------------------------------------------------------------
    def get_counter(self, name: str) -> Counter:
        """Look up an existing counter; KeyError with the known names."""
        return _lookup(self._counters, name, "counter")

    def get_vector(self, name: str) -> VectorCounter:
        """Look up an existing vector counter by name."""
        return _lookup(self._vectors, name, "vector counter")

    def get_gauge(self, name: str) -> MaxGauge:
        """Look up an existing high-water gauge by name."""
        return _lookup(self._gauges, name, "max gauge")

    def get_histogram(self, name: str) -> Histogram:
        """Look up an existing histogram by name."""
        return _lookup(self._histograms, name, "histogram")

    def get_timer(self, name: str) -> SpanTimer:
        """Look up an existing span timer by name."""
        return _lookup(self._timers, name, "timer")

    def get_series(self, name: str) -> BinnedSeries:
        """Look up an existing binned series by name."""
        return _lookup(self._series, name, "series")

    def counters(self) -> dict[str, Counter]:
        """All scalar counters by name (live references)."""
        return dict(self._counters)

    def vectors(self) -> dict[str, VectorCounter]:
        """All vector counters by name (live references)."""
        return dict(self._vectors)

    def gauges(self) -> dict[str, MaxGauge]:
        """All high-water gauges by name (live references)."""
        return dict(self._gauges)

    def histograms(self) -> dict[str, Histogram]:
        """All histograms by name (live references)."""
        return dict(self._histograms)

    def timers(self) -> dict[str, SpanTimer]:
        """All span timers by name (live references)."""
        return dict(self._timers)

    def series_map(self) -> dict[str, BinnedSeries]:
        """All binned series by name (live references)."""
        return dict(self._series)


def _lookup(group: dict, name: str, kind: str):
    try:
        return group[name]
    except KeyError:
        raise KeyError(
            f"no {kind} named {name!r} is registered; known: {sorted(group)}"
        ) from None


#: The process-global registry every instrumented component binds to.
_GLOBAL = Registry()


def get_registry() -> Registry:
    """The process-global :class:`Registry` (disabled by default)."""
    return _GLOBAL


def enable() -> None:
    """Enable the process-global registry."""
    _GLOBAL.enable()


def disable() -> None:
    """Disable the process-global registry."""
    _GLOBAL.disable()


def reset() -> None:
    """Zero every instrument of the process-global registry."""
    _GLOBAL.reset()


@contextmanager
def observed_run(registry: Registry | None = None, reset_first: bool = True) -> Iterator[Registry]:
    """Enable (and by default reset) a registry for the duration of a run.

    The canonical way to scope a snapshot to one simulation::

        with observed_run() as reg:
            kernel.run(until=duration)
        data = export.snapshot(reg)   # reads are fine after exit

    The previous enabled state is restored on exit, so nesting inside an
    already-observed region does not switch observability off.
    """
    reg = registry if registry is not None else _GLOBAL
    was_enabled = reg.enabled
    if reset_first:
        reg.reset()
    reg.enable()
    try:
        yield reg
    finally:
        reg.enabled = was_enabled
