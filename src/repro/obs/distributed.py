"""Distributed observability: snapshot, ship, and merge worker obs state.

The multi-process backend (:mod:`repro.engine.parallel`) runs each shard
in its own OS process, so each worker accumulates instruments in its own
process-global :class:`~repro.obs.registry.Registry` and records into
its own :class:`~repro.obs.trace.TraceBuffer`. This module is the bridge
that makes a distributed run observable *exactly like* a single-process
one:

- :class:`RegistrySnapshot` / :class:`TraceSnapshot` are picklable,
  shard-labeled captures of a registry / tracer. Workers capture them
  after the last window and ship them inside the ``("done", ...)``
  result envelope over the existing ``mp.Pipe`` control plane — never
  inside barrier mail, so a disabled-obs run ships *zero* extra bytes
  (``tests/test_obs_overhead.py`` proves byte-identical mail batches).
- ``merge`` folds N worker snapshots (plus the controller's own capture)
  into one global snapshot: counters and vectors sum, high-water gauges
  take the element-wise max, histograms add bin-wise
  (:meth:`repro.obs.counters.Histogram.merge_from` — mismatched bounds
  are a typed error, never a silent re-bin), span timers add counts and
  totals, binned series pad to a common length and sum. For
  deterministic instruments the merged snapshot *equals* the
  single-process observed run's snapshot on the same workload
  (``tests/test_obs_distributed_mp.py`` asserts this for procs 1/2/4
  under both fork and spawn).
- :func:`worker_obs_config` / :func:`configure_worker_observability`
  carry the controller's enablement over the worker-config payload —
  spawn-safe, and explicitly resetting fork-inherited instrument values
  so a worker snapshot covers only the worker's own run.
- :class:`CalibrationRecorder` + :func:`window_calibration` compare
  measured per-window wall-clock (the workers'
  :class:`~repro.obs.trace.MeasuredWindowRecord` spans) against the cost
  model's prediction, per window — the measured-vs-modeled table the
  ``--obs-out`` snapshot embeds as its ``calibration`` section.

Everything here runs *after* the simulation (capture, merge, restore are
cold paths); the hot-path contract of the obs layer — one guard branch,
no writes when disabled — is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

import numpy as np

from . import names as _names
from .counters import HistogramMergeError
from .registry import Registry, get_registry
from .trace import (
    EdgeRecord,
    FaultRecord,
    MeasuredWindowRecord,
    RebalanceRecord,
    RecoveryRecord,
    SpanRecord,
    TraceBuffer,
    WindowRecord,
    get_tracer,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .counters import Histogram

__all__ = [
    "SnapshotMergeError",
    "RegistrySnapshot",
    "TraceSnapshot",
    "worker_obs_config",
    "configure_worker_observability",
    "merged_registry_snapshot",
    "merged_trace_snapshot",
    "CalibrationRecorder",
    "window_calibration",
    "merged_snapshot_document",
    "CALIBRATION_RATIO_BOUNDS",
]


class SnapshotMergeError(ValueError):
    """Two snapshots disagree structurally and cannot merge losslessly."""


def _merge_histogram(
    name: str,
    a: tuple[tuple[float, ...], np.ndarray, float],
    b: tuple[tuple[float, ...], np.ndarray, float],
) -> tuple[tuple[float, ...], np.ndarray, float]:
    bounds_a, counts_a, sum_a = a
    bounds_b, counts_b, sum_b = b
    if bounds_a != bounds_b:
        raise HistogramMergeError(
            f"histogram {name!r} bounds {bounds_a} cannot merge "
            f"with bounds {bounds_b}"
        )
    return (bounds_a, counts_a + counts_b, sum_a + sum_b)


def _pad_bins(matrix: np.ndarray, num_bins: int, size: int) -> np.ndarray:
    if matrix.shape[0] == num_bins:
        return matrix
    out = np.zeros((num_bins, size), dtype=np.float64)
    out[: matrix.shape[0]] = matrix
    return out


@dataclass(frozen=True)
class RegistrySnapshot:
    """A picklable, mergeable capture of every instrument in a registry.

    ``provenance`` records where the values came from — one
    ``{"shard_id": ..., "label": ...}`` entry per contributing capture,
    concatenated in merge order — so a merged global snapshot still says
    which workers fed it.
    """

    provenance: tuple[dict, ...]
    counters: dict[str, float]
    vectors: dict[str, np.ndarray]
    gauges: dict[str, np.ndarray]
    #: name -> (bounds, per-bucket counts incl. overflow, value sum)
    histograms: dict[str, tuple[tuple[float, ...], np.ndarray, float]]
    #: name -> (span count, total seconds)
    timers: dict[str, tuple[int, float]]
    #: name -> (size, bin_s, [num_bins, size] matrix)
    series: dict[str, tuple[int, float, np.ndarray]]

    @classmethod
    def capture(
        cls,
        registry: Registry | None = None,
        shard_id: int | None = None,
        label: str = "",
    ) -> "RegistrySnapshot":
        """Copy every instrument of ``registry`` into plain data."""
        reg = registry if registry is not None else get_registry()
        return cls(
            provenance=({"shard_id": shard_id, "label": label},),
            counters={n: c.value for n, c in reg.counters().items()},
            vectors={n: v.values.copy() for n, v in reg.vectors().items()},
            gauges={n: g.values.copy() for n, g in reg.gauges().items()},
            histograms={
                n: (h.bounds, h.counts.copy(), h.sum)
                for n, h in reg.histograms().items()
            },
            timers={n: (t.count, t.total_s) for n, t in reg.timers().items()},
            series={
                n: (s.size, s.bin_s, s.matrix())
                for n, s in reg.series_map().items()
            },
        )

    @classmethod
    def merge(cls, snapshots: Sequence["RegistrySnapshot"]) -> "RegistrySnapshot":
        """Fold N captures into one global snapshot (see module doc)."""
        provenance: list[dict] = []
        counters: dict[str, float] = {}
        vectors: dict[str, np.ndarray] = {}
        gauges: dict[str, np.ndarray] = {}
        histograms: dict[str, tuple[tuple[float, ...], np.ndarray, float]] = {}
        timers: dict[str, tuple[int, float]] = {}
        series: dict[str, tuple[int, float, np.ndarray]] = {}
        for snap in snapshots:
            provenance.extend(dict(p) for p in snap.provenance)
            for name, value in snap.counters.items():
                counters[name] = counters.get(name, 0.0) + value
            for name, values in snap.vectors.items():
                prev = vectors.get(name)
                if prev is None:
                    vectors[name] = values.copy()
                elif prev.shape != values.shape:
                    raise SnapshotMergeError(
                        f"vector {name!r} size {values.shape[0]} != "
                        f"merged size {prev.shape[0]}"
                    )
                else:
                    prev += values
            for name, values in snap.gauges.items():
                prev = gauges.get(name)
                if prev is None:
                    gauges[name] = values.copy()
                elif prev.shape != values.shape:
                    raise SnapshotMergeError(
                        f"gauge {name!r} size {values.shape[0]} != "
                        f"merged size {prev.shape[0]}"
                    )
                else:
                    np.maximum(prev, values, out=prev)
            for name, hist in snap.histograms.items():
                prev_h = histograms.get(name)
                if prev_h is None:
                    histograms[name] = (hist[0], hist[1].copy(), hist[2])
                else:
                    histograms[name] = _merge_histogram(name, prev_h, hist)
            for name, (count, total_s) in snap.timers.items():
                pc, pt = timers.get(name, (0, 0.0))
                timers[name] = (pc + count, pt + total_s)
            for name, (size, bin_s, matrix) in snap.series.items():
                prev_s = series.get(name)
                if prev_s is None:
                    series[name] = (size, bin_s, matrix.copy())
                    continue
                psize, pbin, pmatrix = prev_s
                if psize != size or pbin != bin_s:
                    raise SnapshotMergeError(
                        f"series {name!r} shape (size={size}, bin_s={bin_s}) "
                        f"!= merged (size={psize}, bin_s={pbin})"
                    )
                bins = max(pmatrix.shape[0], matrix.shape[0])
                series[name] = (
                    size,
                    bin_s,
                    _pad_bins(pmatrix, bins, size) + _pad_bins(matrix, bins, size),
                )
        return cls(
            provenance=tuple(provenance),
            counters=counters,
            vectors=vectors,
            gauges=gauges,
            histograms=histograms,
            timers=timers,
            series=series,
        )

    def diff(self, prev: "RegistrySnapshot") -> "RegistrySnapshot":
        """The delta ``self - prev`` (incremental per-window shipping).

        Counters, vectors, histograms, timers, and series subtract;
        high-water gauges keep the *current* values (their merge is max,
        so re-applying the running maximum is the correct delta). An
        instrument absent from ``prev`` contributes its full value.
        Zero deltas are dropped entirely — merging with the accumulated
        snapshot restores them — which is what keeps a quiet window's
        delta payload near-empty instead of a full snapshot's size.
        """
        counters = {
            n: v - prev.counters.get(n, 0.0)
            for n, v in self.counters.items()
            if v != prev.counters.get(n, 0.0)
        }
        vectors = {}
        for n, v in self.vectors.items():
            old = prev.vectors.get(n)
            if old is None or old.shape != v.shape:
                if v.any():
                    vectors[n] = v.copy()
            elif (v != old).any():
                vectors[n] = v - old
        gauges = {}
        for n, v in self.gauges.items():
            old = prev.gauges.get(n)
            if old is None or old.shape != v.shape or (v != old).any():
                gauges[n] = v.copy()
        histograms = {}
        for n, (bounds, counts, total) in self.histograms.items():
            old = prev.histograms.get(n)
            if old is None or old[0] != bounds:
                if counts.any() or total:
                    histograms[n] = (bounds, counts.copy(), total)
            elif (counts != old[1]).any() or total != old[2]:
                histograms[n] = (bounds, counts - old[1], total - old[2])
        timers = {}
        for n, (count, total_s) in self.timers.items():
            oc, ot = prev.timers.get(n, (0, 0.0))
            if count != oc or total_s != ot:
                timers[n] = (count - oc, total_s - ot)
        series = {}
        for n, (size, bin_s, matrix) in self.series.items():
            old = prev.series.get(n)
            if old is None or old[0] != size or old[1] != bin_s:
                if matrix.any():
                    series[n] = (size, bin_s, matrix.copy())
            else:
                bins = max(matrix.shape[0], old[2].shape[0])
                delta = _pad_bins(matrix, bins, size) - _pad_bins(old[2], bins, size)
                if delta.any():
                    series[n] = (size, bin_s, delta)
        return RegistrySnapshot(
            provenance=self.provenance,
            counters=counters,
            vectors=vectors,
            gauges=gauges,
            histograms=histograms,
            timers=timers,
            series=series,
        )

    def restore(self, bin_s: float | None = None) -> Registry:
        """Materialize a *disabled* :class:`Registry` holding these values.

        The restored registry plugs straight into ``obs.export`` — JSON
        snapshots and Prometheus exposition of a merged distributed run
        go through exactly the same code path as a single-process run.
        """
        reg = Registry(enabled=True) if bin_s is None else Registry(True, bin_s)
        for name, value in self.counters.items():
            reg.counter(name).inc(value)
        for name, values in self.vectors.items():
            reg.vector_counter(name, int(values.shape[0])).add_array(values)
        for name, values in self.gauges.items():
            gauge = reg.max_gauge(name, int(values.shape[0]))
            for i, v in enumerate(values):
                gauge.observe(i, float(v))
        for name, (bounds, counts, total) in self.histograms.items():
            hist = reg.histogram(name, bounds)
            hist._counts[:] = counts
            hist._sum = total
        for name, (count, total_s) in self.timers.items():
            timer = reg.timer(name)
            timer._count = int(count)
            timer._total_s = float(total_s)
        for name, (size, bin_s_i, matrix) in self.series.items():
            inst = reg.series(name, size, bin_s_i)
            inst._bins = [matrix[b].copy() for b in range(matrix.shape[0])]
        reg.disable()
        return reg


def _fault_key(record: FaultRecord) -> tuple:
    return (
        record.time,
        record.kind,
        record.phase,
        record.target,
        repr(sorted(record.detail.items(), key=lambda kv: kv[0])),
    )


@dataclass(frozen=True)
class TraceSnapshot:
    """A picklable, mergeable capture of every trace channel."""

    provenance: tuple[dict, ...]
    windows: tuple[WindowRecord, ...]
    edges: tuple[EdgeRecord, ...]
    spans: tuple[SpanRecord, ...]
    events: tuple[tuple[float, int], ...]
    transmissions: tuple[tuple[float, int, int], ...]
    faults: tuple[FaultRecord, ...]
    measured: tuple[MeasuredWindowRecord, ...]
    dropped_records: int
    event_cost_s: float
    remote_event_cost_s: float
    #: accepted mid-run LP migrations (controller-recorded, so merging
    #: concatenates without deduplication)
    rebalance: tuple[RebalanceRecord, ...] = ()
    #: fault-tolerance actions (controller-recorded, like rebalance)
    recovery: tuple[RecoveryRecord, ...] = ()

    @classmethod
    def capture(
        cls,
        tracer: TraceBuffer | None = None,
        shard_id: int | None = None,
        label: str = "",
    ) -> "TraceSnapshot":
        """Copy every retained record of ``tracer`` into plain data."""
        tr = tracer if tracer is not None else get_tracer()
        return cls(
            provenance=({"shard_id": shard_id, "label": label},),
            windows=tuple(tr.windows),
            edges=tuple(tr.edges),
            spans=tuple(tr.spans),
            events=tuple(tr.events),
            transmissions=tuple(tr.transmissions),
            faults=tuple(tr.faults),
            measured=tuple(tr.measured),
            dropped_records=tr.dropped_records,
            event_cost_s=tr.event_cost_s,
            remote_event_cost_s=tr.remote_event_cost_s,
            rebalance=tuple(tr.rebalance),
            recovery=tuple(tr.recovery),
        )

    @classmethod
    def merge(cls, snapshots: Sequence["TraceSnapshot"]) -> "TraceSnapshot":
        """Fold N worker traces into one global trace.

        Window records with the same index sum their per-LP vectors —
        each worker records the full-width arrays with only its owned
        columns nonzero, so the grouped sum reproduces the
        single-process record exactly (window bounds must agree; a
        mismatch raises :class:`SnapshotMergeError`). Point channels
        (edges, events, transmissions) concatenate under a deterministic
        sort by simulated time; faults are deduplicated because every
        worker may replay the same control-plane schedule.
        """
        provenance: list[dict] = []
        by_window: dict[int, WindowRecord] = {}
        edges: list[EdgeRecord] = []
        spans: list[SpanRecord] = []
        events: list[tuple[float, int]] = []
        transmissions: list[tuple[float, int, int]] = []
        faults: dict[tuple, FaultRecord] = {}
        measured: list[MeasuredWindowRecord] = []
        rebalance: list[RebalanceRecord] = []
        recovery: list[RecoveryRecord] = []
        dropped = 0
        event_cost_s = 10e-6
        remote_event_cost_s = 25e-6
        for snap in snapshots:
            provenance.extend(dict(p) for p in snap.provenance)
            dropped += snap.dropped_records
            event_cost_s = snap.event_cost_s
            remote_event_cost_s = snap.remote_event_cost_s
            for w in snap.windows:
                prev = by_window.get(w.window_index)
                if prev is None:
                    by_window[w.window_index] = w
                    continue
                if prev.start != w.start or prev.end != w.end:
                    raise SnapshotMergeError(
                        f"window {w.window_index} bounds "
                        f"({w.start}, {w.end}) != ({prev.start}, {prev.end})"
                    )
                if prev.num_lps != w.num_lps:
                    raise SnapshotMergeError(
                        f"window {w.window_index} has {w.num_lps} LPs, "
                        f"merged record has {prev.num_lps}"
                    )
                by_window[w.window_index] = WindowRecord(
                    w.window_index,
                    w.start,
                    w.end,
                    prev.events_per_lp + w.events_per_lp,
                    prev.remote_per_lp + w.remote_per_lp,
                    prev.busy_s_per_lp + w.busy_s_per_lp,
                )
            edges.extend(snap.edges)
            spans.extend(snap.spans)
            events.extend(snap.events)
            transmissions.extend(snap.transmissions)
            for f in snap.faults:
                faults.setdefault(_fault_key(f), f)
            measured.extend(snap.measured)
            rebalance.extend(snap.rebalance)
            recovery.extend(snap.recovery)
        edges.sort(key=lambda e: (e.send_time, e.src_lp, e.dst_lp, e.deliver_time))
        spans.sort(key=lambda s: (s.start_s, s.end_s, s.kind))
        events.sort()
        transmissions.sort()
        measured.sort(key=lambda m: (m.window_index, m.shard_id))
        rebalance.sort(key=lambda r: (r.window_index, r.lp))
        recovery.sort(key=lambda r: (r.window_index, r.shard_id, r.kind))
        return cls(
            provenance=tuple(provenance),
            windows=tuple(
                by_window[i] for i in sorted(by_window)
            ),
            edges=tuple(edges),
            spans=tuple(spans),
            events=tuple(events),
            transmissions=tuple(transmissions),
            faults=tuple(
                faults[k] for k in sorted(faults, key=lambda k: (k[0], k[1], k[2]))
            ),
            measured=tuple(measured),
            dropped_records=dropped,
            event_cost_s=event_cost_s,
            remote_event_cost_s=remote_event_cost_s,
            rebalance=tuple(rebalance),
            recovery=tuple(recovery),
        )

    def restore(self, capacity: int | None = None) -> TraceBuffer:
        """Materialize a *disabled* :class:`TraceBuffer` with these records.

        The restored buffer feeds ``obs.blame`` and
        ``obs.trace_export`` unchanged — ``repro trace --timeline`` on a
        merged distributed trace is the same code path as single-process.
        """
        cap = capacity if capacity is not None else max(
            len(self.windows), len(self.edges), len(self.spans),
            len(self.events), len(self.transmissions), len(self.faults),
            len(self.measured), len(self.rebalance), len(self.recovery), 1,
        )
        tr = TraceBuffer(
            capacity=cap,
            enabled=False,
            event_cost_s=self.event_cost_s,
            remote_event_cost_s=self.remote_event_cost_s,
        )
        tr.windows.extend(self.windows)
        tr.edges.extend(self.edges)
        tr.spans.extend(self.spans)
        tr.events.extend(self.events)
        tr.transmissions.extend(self.transmissions)
        tr.faults.extend(self.faults)
        tr.measured.extend(self.measured)
        tr.rebalance.extend(self.rebalance)
        tr.recovery.extend(self.recovery)
        tr.dropped_records = self.dropped_records
        return tr


# ----------------------------------------------------------------------
# Worker-side wiring (controller -> worker enablement, worker -> capture)
# ----------------------------------------------------------------------
def worker_obs_config(
    registry: Registry | None = None,
    tracer: TraceBuffer | None = None,
    incremental: bool = False,
) -> dict | None:
    """The obs stanza of a worker config — ``None`` when obs is off.

    ``None`` is the whole zero-overhead story: the worker-side code path
    checks one key and, finding nothing, never imports a snapshot, never
    restarts a stopwatch, and sends byte-identical messages to a build
    without the observability layer.
    """
    reg = registry if registry is not None else get_registry()
    tr = tracer if tracer is not None else get_tracer()
    if not (reg.enabled or tr.enabled):
        return None
    return {
        "registry": reg.enabled,
        "bin_s": reg.bin_s,
        "trace": tr.enabled,
        "capacity": tr.capacity,
        "event_cost_s": tr.event_cost_s,
        "remote_event_cost_s": tr.remote_event_cost_s,
        "incremental": bool(incremental),
    }


def configure_worker_observability(config: Mapping[str, Any] | None) -> bool:
    """Apply a :func:`worker_obs_config` stanza inside a worker process.

    Clears the worker's process-global registry and tracer before
    enabling them: under the ``fork`` start method the child inherits
    whatever the parent recorded before the run (e.g. the single-process
    reference pass), and a worker snapshot must cover only the worker's
    own windows. Returns True when any obs collection is on.
    """
    if not config:
        return False
    reg = get_registry()
    tr = get_tracer()
    reg.clear()
    reg.bin_s = float(config.get("bin_s", reg.bin_s))
    reg.enabled = bool(config.get("registry", False))
    tr.reset()
    tr.capacity = int(config.get("capacity", tr.capacity))
    tr.set_costs(
        float(config.get("event_cost_s", tr.event_cost_s)),
        float(config.get("remote_event_cost_s", tr.remote_event_cost_s)),
    )
    tr.enabled = bool(config.get("trace", False))
    return reg.enabled or tr.enabled


def merged_registry_snapshot(
    result, registry: Registry | None = None, label: str = "controller"
) -> RegistrySnapshot:
    """Controller capture + every worker snapshot, merged.

    ``result`` is a :class:`repro.engine.parallel.ParallelRunResult`;
    its ``registry_snapshots`` list is empty when the run was unobserved,
    in which case this is just the controller's own (empty) capture.
    """
    controller = RegistrySnapshot.capture(registry, shard_id=None, label=label)
    return RegistrySnapshot.merge([controller, *result.registry_snapshots])


def merged_trace_snapshot(
    result, tracer: TraceBuffer | None = None, label: str = "controller"
) -> TraceSnapshot:
    """Controller trace capture + every worker trace snapshot, merged."""
    controller = TraceSnapshot.capture(tracer, shard_id=None, label=label)
    return TraceSnapshot.merge([controller, *result.trace_snapshots])


# ----------------------------------------------------------------------
# Measured-vs-modeled window calibration
# ----------------------------------------------------------------------
#: Ratio-histogram bucket bounds: measured/predicted per window. A
#: perfectly calibrated cost model concentrates mass around the 1.0
#: buckets; the tails say which direction the model is wrong.
CALIBRATION_RATIO_BOUNDS = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0, 10.0)


class CalibrationRecorder:
    """Registers and feeds the ``calibration.*`` instruments.

    Instruments resolve once at construction (the registry contract);
    :meth:`record` is guarded per instrument, so an unobserved
    calibration pass writes nothing.
    """

    def __init__(self, registry: Registry | None = None) -> None:
        reg = registry if registry is not None else get_registry()
        self._windows = reg.counter(_names.CALIBRATION_WINDOWS)
        self._measured = reg.counter(_names.CALIBRATION_MEASURED_WALL)
        self._predicted = reg.counter(_names.CALIBRATION_PREDICTED_WALL)
        self._ratio = reg.histogram(
            _names.CALIBRATION_RATIO, CALIBRATION_RATIO_BOUNDS
        )

    def record(self, measured_s: float, predicted_s: float) -> None:
        """Record one window's measured and predicted wall-clock."""
        self._windows.inc()
        self._measured.inc(float(measured_s))
        self._predicted.inc(float(predicted_s))
        if predicted_s > 0:
            self._ratio.observe(float(measured_s) / float(predicted_s))


def window_calibration(
    measured: Iterable[MeasuredWindowRecord],
    predicted_by_window: Mapping[int, float],
    registry: Registry | None = None,
) -> dict:
    """Per-window measured vs cost-model-predicted wall-clock table.

    A window's *measured* wall is the slowest worker's total span for
    that window (execute + mail encode + barrier wait + mail decode) —
    the barrier semantics make the straggler's span the window's wall.
    The *predicted* wall comes from the caller (the cost model's
    per-window ``max_shard(busy) + C(N)``). Also feeds the
    ``calibration.*`` instruments of ``registry`` so the numbers appear
    in the merged snapshot / Prometheus exposition.
    """
    by_window: dict[int, float] = {}
    for record in measured:
        w = record.window_index
        by_window[w] = max(by_window.get(w, 0.0), record.total_s)
    recorder = CalibrationRecorder(registry)
    rows = []
    worst = None
    for w in sorted(by_window):
        if w not in predicted_by_window:
            continue
        measured_s = by_window[w]
        predicted_s = float(predicted_by_window[w])
        recorder.record(measured_s, predicted_s)
        ratio = measured_s / predicted_s if predicted_s > 0 else float("inf")
        row = {
            "window": int(w),
            "measured_s": measured_s,
            "predicted_s": predicted_s,
            "ratio": ratio,
        }
        rows.append(row)
        deviation = abs(measured_s - predicted_s)
        if worst is None or deviation > worst[0]:
            worst = (deviation, row)
    measured_total = sum(r["measured_s"] for r in rows)
    predicted_total = sum(r["predicted_s"] for r in rows)
    return {
        "windows": rows,
        "measured_total_s": measured_total,
        "predicted_total_s": predicted_total,
        "overall_ratio": (
            measured_total / predicted_total if predicted_total > 0 else None
        ),
        "worst_window": (
            dict(worst[1], deviation_s=worst[0]) if worst is not None else None
        ),
    }


def merged_snapshot_document(
    registry_snapshot: RegistrySnapshot,
    trace_snapshot: TraceSnapshot | None = None,
    meta: dict | None = None,
    calibration: dict | None = None,
) -> dict:
    """The ``--obs-out`` JSON document for one distributed run.

    The instrument part is :func:`repro.obs.export.snapshot` over the
    merged snapshot's restored registry — the identical schema a
    single-process run writes — extended with per-shard provenance,
    the measured per-window worker spans, and the calibration table.
    """
    from . import export  # deferred: export -> names only, but keep cold

    doc = export.snapshot(registry_snapshot.restore(), meta)
    doc["shards"] = [dict(p) for p in registry_snapshot.provenance]
    if trace_snapshot is not None:
        doc["measured_windows"] = [
            {
                "window": m.window_index,
                "shard": m.shard_id,
                "execute_s": m.execute_s,
                "barrier_wait_s": m.barrier_wait_s,
                "mail_encode_s": m.mail_encode_s,
                "mail_decode_s": m.mail_decode_s,
                "events": m.events,
                "mail_bytes": m.mail_bytes,
            }
            for m in trace_snapshot.measured
        ]
    if calibration is not None:
        doc["calibration"] = calibration
    return doc
