"""Chrome trace-event (Perfetto-loadable) export of a recorded trace.

Renders the tracer's window records as a *modeled wall-clock timeline*:
each LP is a thread track, each window contributes one complete slice
per LP covering its modeled busy time, a ``barrier`` slice on a
dedicated track covers the synchronization cost, and cross-LP message
edges become flow arrows from the sender's slice to the receiver's.
The resulting JSON object follows the Chrome trace-event format
(``{"traceEvents": [...]}``) and loads in ``chrome://tracing`` and
https://ui.perfetto.dev unchanged.

The timeline is *modeled*: simulated event counts are converted to
seconds with the cost model calibration the trace recorded, and windows
are laid out back to back the way the barrier-synchronized engine would
execute them. Straggler slices carry ``args.straggler = true`` so the
slowest LP of every window is one query away.

Traces from the multi-process backend additionally carry *measured*
per-window worker spans (:class:`~repro.obs.trace.MeasuredWindowRecord`);
those render as a second process (``pid=1``) with one thread track per
worker shard, each window decomposed into real execute / mail-encode /
barrier-wait / mail-decode slices on the shard's own cumulative
wall-clock — the measured timeline next to the modeled one.
"""

from __future__ import annotations

import json

import numpy as np

from .trace import TraceBuffer

__all__ = ["to_chrome_trace", "write_chrome_trace", "MAX_FLOW_EVENTS"]

#: Cap on exported message-edge flow pairs, keeping huge traces loadable.
MAX_FLOW_EVENTS = 2_000

#: Track id of the barrier/sync slices (LP tracks use their LP index).
_BARRIER_TID = -1

#: Process id of the measured per-worker tracks (modeled tracks use 0).
_MEASURED_PID = 1


def to_chrome_trace(
    trace: TraceBuffer,
    sync_cost_s: float = 0.0,
    max_flows: int = MAX_FLOW_EVENTS,
) -> dict:
    """The trace as a Chrome trace-event JSON object (plain dict).

    ``sync_cost_s`` is the modeled per-barrier cost ``C(N)`` appended to
    every window (0 hides the barrier track). Timestamps are in
    microseconds of *modeled wall-clock*, starting at 0.
    """
    windows = list(trace.windows)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro conservative engine (modeled)"},
        }
    ]
    num_lps = windows[0].num_lps if windows else 0
    for lp in range(num_lps):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": lp,
                "args": {"name": f"LP {lp}"},
            }
        )
    if sync_cost_s > 0:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": _BARRIER_TID,
                "args": {"name": "barrier"},
            }
        )

    # Lay the windows out on a modeled wall clock: window wall start ->
    # per-LP busy slices -> barrier slice -> next window.
    wall_us = 0.0
    #: window_index -> (wall start us, busy_us per lp) for flow placement
    layout: dict[int, tuple[float, np.ndarray]] = {}
    for w in windows:
        busy_us = w.busy_s_per_lp * 1e6
        layout[w.window_index] = (wall_us, busy_us)
        straggler = w.straggler_lp
        for lp in range(w.num_lps):
            if busy_us[lp] <= 0.0:
                continue
            events.append(
                {
                    "name": f"window {w.window_index}",
                    "cat": "window",
                    "ph": "X",
                    "ts": wall_us,
                    "dur": float(busy_us[lp]),
                    "pid": 0,
                    "tid": lp,
                    "args": {
                        "events": int(w.events_per_lp[lp]),
                        "remote_sends": int(w.remote_per_lp[lp]),
                        "sim_start_s": w.start,
                        "sim_end_s": w.end,
                        "straggler": lp == straggler,
                    },
                }
            )
        max_busy_us = float(busy_us.max()) if busy_us.size else 0.0
        if sync_cost_s > 0:
            events.append(
                {
                    "name": "barrier",
                    "cat": "sync",
                    "ph": "X",
                    "ts": wall_us + max_busy_us,
                    "dur": sync_cost_s * 1e6,
                    "pid": 0,
                    "tid": _BARRIER_TID,
                    "args": {"window": w.window_index},
                }
            )
        wall_us += max_busy_us + sync_cost_s * 1e6

    events.extend(_flow_events(trace, windows, layout, max_flows))
    events.extend(_measured_events(trace))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _measured_events(trace: TraceBuffer) -> list[dict]:
    """Measured worker spans as per-shard thread tracks under ``pid=1``.

    Each shard's windows lie back to back on that shard's own measured
    wall-clock (cumulative over its records in window order), with the
    four span kinds as adjacent slices — so the width of a track is the
    wall time that worker process really spent, and barrier-wait slices
    line up visually with the stragglers that caused them.
    """
    records = sorted(trace.measured, key=lambda r: (r.shard_id, r.window_index))
    if not records:
        return []
    out: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _MEASURED_PID,
            "tid": 0,
            "args": {"name": "repro mp workers (measured)"},
        }
    ]
    for shard_id in sorted({r.shard_id for r in records}):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _MEASURED_PID,
                "tid": shard_id,
                "args": {"name": f"worker {shard_id}"},
            }
        )
    clocks: dict[int, float] = {}
    for r in records:
        wall_us = clocks.get(r.shard_id, 0.0)
        spans = (
            ("execute", r.execute_s),
            ("mail-encode", r.mail_encode_s),
            ("barrier-wait", r.barrier_wait_s),
            ("mail-decode", r.mail_decode_s),
        )
        for name, span_s in spans:
            dur_us = float(span_s) * 1e6
            if dur_us <= 0.0:
                continue
            out.append(
                {
                    "name": name,
                    "cat": "measured",
                    "ph": "X",
                    "ts": wall_us,
                    "dur": dur_us,
                    "pid": _MEASURED_PID,
                    "tid": r.shard_id,
                    "args": {
                        "window": r.window_index,
                        "events": r.events,
                        "mail_bytes": r.mail_bytes,
                    },
                }
            )
            wall_us += dur_us
        clocks[r.shard_id] = wall_us
    return out


def _flow_events(
    trace: TraceBuffer,
    windows: list,
    layout: dict[int, tuple[float, np.ndarray]],
    max_flows: int,
) -> list[dict]:
    """Message edges as ``s``/``f`` flow pairs between LP slices.

    A flow starts at the end of the sender's busy slice in the window
    containing the send time and finishes at the start of the receiver's
    slice in the window containing the delivery time — the modeled
    wall-clock shadow of the cross-LP mail the barrier carried.
    """
    if not windows or not trace.edges:
        return []
    starts = np.asarray([w.start for w in windows])
    out: list[dict] = []
    emitted = 0
    for i, e in enumerate(trace.edges):
        if emitted >= max_flows:
            break
        send_i = int(np.searchsorted(starts, e.send_time, side="right")) - 1
        recv_i = int(np.searchsorted(starts, e.deliver_time, side="right")) - 1
        if not (0 <= send_i < len(windows) and 0 <= recv_i < len(windows)):
            continue
        send_w, recv_w = windows[send_i], windows[recv_i]
        if not (send_w.start <= e.send_time < send_w.end):
            continue
        if not (recv_w.start <= e.deliver_time < recv_w.end):
            continue
        send_wall, send_busy = layout[send_w.window_index]
        recv_wall, _ = layout[recv_w.window_index]
        out.append(
            {
                "name": "xlp-mail",
                "cat": "mail",
                "ph": "s",
                "id": i,
                "ts": send_wall + float(send_busy[e.src_lp]),
                "pid": 0,
                "tid": e.src_lp,
            }
        )
        out.append(
            {
                "name": "xlp-mail",
                "cat": "mail",
                "ph": "f",
                "bp": "e",
                "id": i,
                "ts": recv_wall,
                "pid": 0,
                "tid": e.dst_lp,
            }
        )
        emitted += 1
    return out


def write_chrome_trace(
    path: str,
    trace: TraceBuffer,
    sync_cost_s: float = 0.0,
    max_flows: int = MAX_FLOW_EVENTS,
) -> None:
    """Write the Chrome trace-event JSON document to ``path``."""
    doc = to_chrome_trace(trace, sync_cost_s=sync_cost_s, max_flows=max_flows)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"))
