"""Bridge: registry snapshot -> :class:`~repro.profilers.traffic.TrafficProfile`.

The paper's PROF approaches need "an initial simulation experiment ...
traffic monitoring". With the observability layer wired into the packet
simulator, any live run *is* that monitoring: this module snapshots the
``netsim.*`` instruments into a :class:`TrafficProfile` — including the
binned per-node event-rate series of Figure 3 — so PROF/HPROF can
consume a real run instead of a hand-assembled array triple.

Usage::

    with observed_run() as reg:
        kernel.run(until=duration)
    profile = profile_from_registry(duration, reg)
    mapping = MappingPipeline.for_network(net, k).run(Approach.PROF, profile)
"""

from __future__ import annotations

import numpy as np

from ..profilers.traffic import TrafficProfile
from . import names
from .registry import Registry, get_registry

__all__ = ["profile_from_registry", "rate_series_from_registry"]


def profile_from_registry(
    duration_s: float, registry: Registry | None = None
) -> TrafficProfile:
    """Snapshot the netsim instruments of a run into a traffic profile.

    ``duration_s`` is the observed simulated duration (the profile's
    normalization base for event rates). Raises ``KeyError`` with the
    known instrument names when no simulator was instrumented in this
    registry (i.e. no :class:`~repro.netsim.simulator.NetworkSimulator`
    was constructed while observability was wired up), and ``ValueError``
    when the instruments are empty — profiling a run that executed no
    traffic would silently produce an all-ones PROF weighting.
    """
    reg = registry if registry is not None else get_registry()
    node_events = reg.get_vector(names.NETSIM_NODE_EVENTS)
    link_bytes = reg.get_vector(names.NETSIM_LINK_BYTES)
    link_packets = reg.get_vector(names.NETSIM_LINK_PACKETS)
    if node_events.total == 0:
        raise ValueError(
            "observed run recorded zero node events; enable the registry "
            "(repro.obs.observed_run) *before* running the simulation"
        )
    series = reg.get_series(names.NETSIM_NODE_RATE_BINS)
    return TrafficProfile(
        node_events=node_events.values.copy(),
        link_bytes=link_bytes.values.copy(),
        link_packets=link_packets.values.copy(),
        duration_s=float(duration_s),
        node_rate_bins=series.matrix(),
        rate_bin_s=series.bin_s,
    )


def rate_series_from_registry(
    registry: Registry | None = None,
    groups: np.ndarray | None = None,
    num_groups: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The binned event-rate series of the observed run (Figure 3).

    Without ``groups``, returns ``(bin_starts, rates[bins, num_nodes])``
    straight from the registry. With ``groups`` (a ``node -> group``
    vector, e.g. an LP assignment) the per-node series is aggregated
    into ``num_groups`` series — the exact form of the paper's Figure 3,
    which plots load per *partition* over the run's lifetime.
    """
    reg = registry if registry is not None else get_registry()
    series = reg.get_series(names.NETSIM_NODE_RATE_BINS)
    starts, rates = series.rates()
    if groups is None:
        return starts, rates
    groups = np.asarray(groups, dtype=np.int64)
    if groups.shape[0] != series.size:
        raise ValueError(
            f"groups has {groups.shape[0]} entries for {series.size} nodes"
        )
    k = int(num_groups) if num_groups is not None else int(groups.max()) + 1
    grouped = np.zeros((rates.shape[0], k), dtype=np.float64)
    for g in range(k):
        mask = groups == g
        if mask.any():
            grouped[:, g] = rates[:, mask].sum(axis=1)
    return starts, grouped
