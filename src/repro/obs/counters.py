"""Counting instruments: counters, vectors, high-water gauges, histograms.

Every instrument follows the same two-layer shape:

- the **public write method** (``inc`` / ``add`` / ``observe``) checks
  the owning registry's ``enabled`` flag and returns immediately when
  instrumentation is off — no state is touched;
- the **private ``_record`` method** performs the actual mutation.

The split is load-bearing: the overhead guard test monkeypatches the
``_record`` layer to *prove* a disabled run never writes, and the write
path never performs a dict lookup (instruments are resolved by name once
at construction — see :mod:`repro.obs.registry`).

All recorded quantities are simulated-domain values (event counts,
bytes, simulated seconds), so instrument state is exactly reproducible
across runs with the same seed.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .registry import Registry

__all__ = [
    "Counter",
    "VectorCounter",
    "MaxGauge",
    "Histogram",
    "BinnedSeries",
    "HistogramMergeError",
]


class HistogramMergeError(ValueError):
    """Two histograms with different bucket bounds cannot merge exactly."""


class Counter:
    """A named scalar monotonic counter."""

    __slots__ = ("name", "_reg", "_value")

    def __init__(self, name: str, registry: "Registry") -> None:
        self.name = name
        self._reg = registry
        self._value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (default 1) when the registry is enabled."""
        if self._reg.enabled:
            self._record(n)

    def _record(self, n: float) -> None:
        self._value += n

    @property
    def value(self) -> float:
        """The accumulated count."""
        return self._value

    def reset(self) -> None:
        """Zero the counter."""
        self._value = 0.0


class VectorCounter:
    """A fixed-size array of per-index monotonic counters.

    Used for per-node event counts, per-link byte/packet/drop totals,
    and per-LP engine counters — anywhere the index is a dense id.
    """

    __slots__ = ("name", "_reg", "_values")

    def __init__(self, name: str, registry: "Registry", size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self.name = name
        self._reg = registry
        self._values = np.zeros(int(size), dtype=np.float64)

    def inc(self, index: int, n: float = 1.0) -> None:
        """Add ``n`` to slot ``index`` when the registry is enabled."""
        if self._reg.enabled:
            self._record(index, n)

    def add_array(self, values: np.ndarray) -> None:
        """Element-wise add a whole array (per-window engine flushes)."""
        if self._reg.enabled:
            self._record_array(values)

    def _record(self, index: int, n: float) -> None:
        self._values[index] += n

    def _record_array(self, values: np.ndarray) -> None:
        self._values += values

    @property
    def size(self) -> int:
        """Number of slots."""
        return int(self._values.shape[0])

    @property
    def values(self) -> np.ndarray:
        """The live value array (copy before mutating a snapshot)."""
        return self._values

    @property
    def total(self) -> float:
        """Sum over all slots."""
        return float(self._values.sum())

    def reset(self) -> None:
        """Zero every slot."""
        self._values[:] = 0.0


class MaxGauge:
    """Per-index high-water marks (e.g. queue-depth maxima per link)."""

    __slots__ = ("name", "_reg", "_values")

    def __init__(self, name: str, registry: "Registry", size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self.name = name
        self._reg = registry
        self._values = np.zeros(int(size), dtype=np.float64)

    def observe(self, index: int, value: float) -> None:
        """Raise slot ``index`` to ``value`` if it is a new maximum."""
        if self._reg.enabled and value > self._values[index]:
            self._record(index, value)

    def _record(self, index: int, value: float) -> None:
        self._values[index] = value

    @property
    def size(self) -> int:
        """Number of slots."""
        return int(self._values.shape[0])

    @property
    def values(self) -> np.ndarray:
        """The live high-water array (copy before mutating a snapshot)."""
        return self._values

    def reset(self) -> None:
        """Zero every high-water mark."""
        self._values[:] = 0.0


class Histogram:
    """A fixed-bucket histogram (upper bounds, +Inf overflow bucket).

    ``bounds`` are the inclusive upper edges; an observation lands in the
    first bucket whose bound is >= the value, or in the overflow bucket.
    Exported in Prometheus' cumulative-``le`` convention.
    """

    __slots__ = ("name", "_reg", "bounds", "_counts", "_sum")

    def __init__(self, name: str, registry: "Registry", bounds: tuple[float, ...]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be sorted ascending")
        self.name = name
        self._reg = registry
        self.bounds = bounds
        self._counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation when the registry is enabled."""
        if self._reg.enabled:
            self._record(value)

    def _record(self, value: float) -> None:
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value

    @property
    def counts(self) -> np.ndarray:
        """Per-bucket counts (last slot is the overflow bucket)."""
        return self._counts

    @property
    def count(self) -> int:
        """Total number of observations."""
        return int(self._counts.sum())

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation in buckets.

        Follows the ``histogram_quantile`` convention: observations are
        assumed uniform within their bucket, the first bucket's lower
        edge is 0.0 when its bound is positive (the bound itself
        otherwise), and a quantile landing in the +Inf overflow bucket
        clamps to the highest finite bound — the histogram cannot say
        more than "at least ``bounds[-1]``". Raises ``ValueError`` for
        ``q`` outside [0, 1] or an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        total = self.count
        if total == 0:
            raise ValueError("cannot take a quantile of an empty histogram")
        rank = q * total
        # A rank landing exactly on a cumulative bucket boundary belongs
        # to the bucket that *completes* it (fraction 1, its upper
        # bound), not at fraction 0 of the next nonempty bucket — the
        # difference is a jump across any empty buckets in between. The
        # product ``q * total`` can overshoot that integer boundary by a
        # few ulps (0.07 * 100 == 7.000000000000001), so snap ranks
        # within float tolerance back onto the integer.
        nearest = round(rank)
        if abs(rank - nearest) <= 1e-9 * max(1.0, total):
            rank = float(nearest)
        cumulative = 0
        for i, bound in enumerate(self.bounds):
            in_bucket = int(self._counts[i])
            if in_bucket and cumulative + in_bucket >= rank:
                if i:
                    lower = self.bounds[i - 1]
                else:
                    # First-bucket lower edge: 0.0 when the bound is
                    # positive; a non-positive bound has no usable width
                    # below it, so the bound itself is both edges.
                    lower = 0.0 if bound > 0 else bound
                fraction = (rank - cumulative) / in_bucket
                return lower + (bound - lower) * fraction
            cumulative += in_bucket
        return self.bounds[-1]

    def merge_from(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram, exactly.

        Merging is lossless only when both histograms bucket identically,
        so identical bounds add bin-wise (counts and sums); any bounds
        mismatch raises :class:`HistogramMergeError` — re-binning would
        silently fabricate data, and the merged ``quantile`` would lie.
        This is how per-worker barrier-wait histograms combine into the
        global distribution (:mod:`repro.obs.distributed`).
        """
        if self.bounds != other.bounds:
            raise HistogramMergeError(
                f"histogram {self.name!r} bounds {self.bounds} cannot merge "
                f"with {other.name!r} bounds {other.bounds}"
            )
        self._counts += other._counts
        self._sum += other._sum

    def reset(self) -> None:
        """Zero all buckets."""
        self._counts[:] = 0
        self._sum = 0.0


class BinnedSeries:
    """Per-index event counts binned over simulated time.

    This is the raw material of the paper's Figure 3 ("load variation
    over the lifetime of simulation"): ``observe(t, i)`` accumulates one
    event for index ``i`` (a node) into the time bin ``t // bin_s``.
    Bins grow on demand, so the series needs no end-time up front.
    """

    __slots__ = ("name", "_reg", "size", "bin_s", "_bins")

    def __init__(self, name: str, registry: "Registry", size: int, bin_s: float) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        if bin_s <= 0:
            raise ValueError("bin_s must be positive")
        self.name = name
        self._reg = registry
        self.size = int(size)
        self.bin_s = float(bin_s)
        self._bins: list[np.ndarray] = []

    def observe(self, t: float, index: int, n: float = 1.0) -> None:
        """Accumulate ``n`` events for ``index`` at simulated time ``t``."""
        if self._reg.enabled:
            self._record(t, index, n)

    def _record(self, t: float, index: int, n: float) -> None:
        b = int(t / self.bin_s)
        bins = self._bins
        while len(bins) <= b:
            bins.append(np.zeros(self.size, dtype=np.float64))
        bins[b][index] += n

    @property
    def num_bins(self) -> int:
        """Number of materialized time bins."""
        return len(self._bins)

    def matrix(self) -> np.ndarray:
        """Counts as a dense ``[num_bins, size]`` array (copy)."""
        if not self._bins:
            return np.zeros((0, self.size), dtype=np.float64)
        return np.stack(self._bins)

    def rates(self) -> tuple[np.ndarray, np.ndarray]:
        """``(bin_start_times, rates[bins, size])`` in events/second."""
        starts = np.arange(self.num_bins, dtype=np.float64) * self.bin_s
        return starts, self.matrix() / self.bin_s

    def reset(self) -> None:
        """Drop all bins."""
        self._bins.clear()
