"""Wall-clock timing instruments — the only sanctioned ``perf_counter`` site.

Simulated components must never read the wall clock (simlint SIM102);
*measuring* the simulator, however, requires it. This module concentrates
every ``time.perf_counter`` call of the package so that

- span measurements are named and aggregated through the registry
  (:class:`SpanTimer`), and
- plain elapsed-time needs (experiment wall-clock reporting, engine
  calibration) go through :class:`Stopwatch` instead of scattering raw
  ``perf_counter()`` calls.

simlint rule SIM106 enforces the boundary: a direct ``perf_counter()``
call anywhere in ``src/repro`` outside ``repro/obs`` is an error.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .registry import Registry

__all__ = ["SpanTimer", "Stopwatch"]


class SpanTimer:
    """Accumulates named wall-clock spans (total seconds + span count).

    The start/stop protocol is allocation-free for hot loops::

        token = timer.start()      # -1.0 when disabled
        ... work ...
        timer.stop(token)          # no-op when token < 0

    ``span()`` wraps the same protocol as a context manager for cooler
    paths. Span durations are wall-clock and therefore *not* part of a
    run's deterministic fingerprint; exporters report them separately.
    """

    __slots__ = ("name", "_reg", "_total_s", "_count")

    def __init__(self, name: str, registry: "Registry") -> None:
        self.name = name
        self._reg = registry
        self._total_s = 0.0
        self._count = 0

    def start(self) -> float:
        """Begin a span; returns a token (``-1.0`` when disabled)."""
        if self._reg.enabled:
            return time.perf_counter()
        return -1.0

    def stop(self, token: float) -> None:
        """End the span opened by ``start()`` (ignores disabled tokens)."""
        if token >= 0.0:
            self._record(time.perf_counter() - token)

    def add(self, elapsed_s: float) -> None:
        """Record one externally measured span of ``elapsed_s`` seconds.

        For call sites that already hold a wall-clock duration (a
        :class:`Stopwatch` shared with another sink, a merged snapshot)
        and must not pay a second pair of clock reads. Guarded like
        every public write method.
        """
        if self._reg.enabled:
            self._record(elapsed_s)

    def _record(self, elapsed_s: float) -> None:
        self._total_s += elapsed_s
        self._count += 1

    @contextmanager
    def span(self) -> Iterator[None]:
        """Context manager form of :meth:`start`/:meth:`stop`."""
        token = self.start()
        try:
            yield
        finally:
            self.stop(token)

    @property
    def total_s(self) -> float:
        """Accumulated span time in seconds."""
        return self._total_s

    @property
    def count(self) -> int:
        """Number of completed spans."""
        return self._count

    @property
    def mean_s(self) -> float:
        """Mean span duration (0 when no spans completed)."""
        return self._total_s / self._count if self._count else 0.0

    def reset(self) -> None:
        """Zero the accumulated time and count."""
        self._total_s = 0.0
        self._count = 0


class Stopwatch:
    """Plain elapsed-wall-clock measurement, registry-independent.

    For code that must *always* measure (experiment wall-clock seconds,
    engine-cost calibration) regardless of whether observability is on.
    """

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction or the last :meth:`restart`."""
        return time.perf_counter() - self._t0

    def restart(self) -> None:
        """Re-zero the stopwatch."""
        self._t0 = time.perf_counter()
