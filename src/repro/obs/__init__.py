"""Runtime observability: counters, timers, and the PROF profile bridge.

The zero-dependency instrumentation subsystem behind the paper's
profile-based load balancing. Hook points live in
:class:`~repro.engine.conservative.ConservativeEngine` (per-LP event and
remote-send counts, barrier-wait spans), the packet simulator
(per-node events, per-link bytes/packets/drops, queue-depth high-water
marks, the Figure 3 rate series), and the BGP engine (updates,
decision-process invocations, convergence spans). All hooks write
through a process-global :class:`Registry` that is disabled by default
and costs one guard branch per hook point when off.

Typical use::

    from repro.obs import observed_run, export, profile_from_registry

    with observed_run() as reg:
        kernel.run(until=10.0)
    profile = profile_from_registry(10.0, reg)   # feed to PROF/HPROF
    export.write_snapshot("run.json", reg)

See ``docs/observability.md`` for the full catalogue of instruments.
"""

from __future__ import annotations

from . import blame, distributed, export, names, trace_export
from .counters import BinnedSeries, Counter, Histogram, MaxGauge, VectorCounter
from .profile_bridge import profile_from_registry, rate_series_from_registry
from .registry import (
    DEFAULT_BIN_S,
    Registry,
    disable,
    enable,
    get_registry,
    observed_run,
    reset,
)
from .timers import SpanTimer, Stopwatch
from .trace import (
    DEFAULT_TRACE_CAPACITY,
    EdgeRecord,
    SpanRecord,
    TraceBuffer,
    WindowRecord,
    get_tracer,
    traced_run,
)

__all__ = [
    "Registry",
    "get_registry",
    "enable",
    "disable",
    "reset",
    "observed_run",
    "DEFAULT_BIN_S",
    "Counter",
    "VectorCounter",
    "MaxGauge",
    "Histogram",
    "BinnedSeries",
    "SpanTimer",
    "Stopwatch",
    "profile_from_registry",
    "rate_series_from_registry",
    "export",
    "names",
    "TraceBuffer",
    "WindowRecord",
    "EdgeRecord",
    "SpanRecord",
    "get_tracer",
    "traced_run",
    "DEFAULT_TRACE_CAPACITY",
    "blame",
    "distributed",
    "whatif",
    "trace_export",
]


def __getattr__(name: str):
    # `whatif` pulls in the mapping pipeline (repro.core); importing it
    # eagerly here would close an import cycle through the instrumented
    # modules (core -> netsim -> obs -> whatif -> core). Resolve lazily.
    if name == "whatif":
        import importlib

        return importlib.import_module(".whatif", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
