"""Snapshot exporters: JSON documents and Prometheus exposition text.

A snapshot is a plain-data view of every instrument in a registry —
counters, vectors, high-water gauges, histograms, span timers, and
binned series — plus caller-provided metadata (scenario, seed, scale).
The JSON form is the machine-readable artifact the ``trace`` CLI and
``--obs-out`` benchmark plumbing write; the Prometheus form lets a
long-running online simulation be scraped with standard tooling.
"""

from __future__ import annotations

import json
import re

from . import names as _names
from .registry import Registry, get_registry

__all__ = ["snapshot", "to_json", "to_prometheus", "write_snapshot"]

#: Schema version of the JSON snapshot document.
SNAPSHOT_VERSION = 1


def snapshot(registry: Registry | None = None, meta: dict | None = None) -> dict:
    """Every instrument of ``registry`` as one plain-data dict."""
    reg = registry if registry is not None else get_registry()
    return {
        "version": SNAPSHOT_VERSION,
        "meta": dict(meta or {}),
        "counters": {n: c.value for n, c in sorted(reg.counters().items())},
        "vectors": {
            n: {"size": v.size, "sum": v.total, "values": v.values.tolist()}
            for n, v in sorted(reg.vectors().items())
        },
        "gauges": {
            n: {"size": g.size, "values": g.values.tolist()}
            for n, g in sorted(reg.gauges().items())
        },
        "histograms": {
            n: {
                "bounds": list(h.bounds),
                "bucket_counts": h.counts.tolist(),
                "count": h.count,
                "sum": h.sum,
            }
            for n, h in sorted(reg.histograms().items())
        },
        "timers": {
            n: {"count": t.count, "total_s": t.total_s, "mean_s": t.mean_s}
            for n, t in sorted(reg.timers().items())
        },
        "series": {
            n: {
                "size": s.size,
                "bin_s": s.bin_s,
                "num_bins": s.num_bins,
                "bins": s.matrix().tolist(),
            }
            for n, s in sorted(reg.series_map().items())
        },
    }


def to_json(
    registry: Registry | None = None, meta: dict | None = None, indent: int | None = 2
) -> str:
    """The snapshot as a JSON document string."""
    return json.dumps(snapshot(registry, meta), indent=indent, sort_keys=False)


_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str) -> str:
    return f"{prefix}_{_PROM_SANITIZE.sub('_', name)}"


def to_prometheus(registry: Registry | None = None, prefix: str = "repro") -> str:
    """The snapshot in Prometheus text exposition format.

    Every metric family carries a ``# HELP`` line (text from
    :data:`repro.obs.names.HELP`) followed by its ``# TYPE``. Vectors
    and gauges emit one sample per index (label ``index``) plus a
    ``_sum`` aggregate; histograms use the cumulative-``le`` bucket
    convention; timers emit ``_seconds_total`` and ``_spans_total``
    counter families. Binned series are omitted — they are a profile
    artifact, not a scrapeable metric (use the JSON snapshot for
    Figure 3 data).
    """
    reg = registry if registry is not None else get_registry()
    out: list[str] = []

    def head(m: str, name: str, kind: str) -> None:
        out.append(f"# HELP {m} {_prom_escape(_names.help_for(name))}")
        out.append(f"# TYPE {m} {kind}")

    for name, c in sorted(reg.counters().items()):
        m = _prom_name(name, prefix)
        head(m, name, "counter")
        out.append(f"{m} {_fmt(c.value)}")
    for name, v in sorted(reg.vectors().items()):
        m = _prom_name(name, prefix)
        head(m, name, "counter")
        out.append(f"{m}_sum {_fmt(v.total)}")
        for i, val in enumerate(v.values):
            out.append(f'{m}{{index="{i}"}} {_fmt(val)}')
    for name, g in sorted(reg.gauges().items()):
        m = _prom_name(name, prefix)
        head(m, name, "gauge")
        for i, val in enumerate(g.values):
            out.append(f'{m}{{index="{i}"}} {_fmt(val)}')
    for name, h in sorted(reg.histograms().items()):
        m = _prom_name(name, prefix)
        head(m, name, "histogram")
        cumulative = 0
        for bound, n in zip(h.bounds, h.counts):
            cumulative += int(n)
            out.append(f'{m}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        out.append(f'{m}_bucket{{le="+Inf"}} {h.count}')
        out.append(f"{m}_sum {_fmt(h.sum)}")
        out.append(f"{m}_count {h.count}")
    for name, t in sorted(reg.timers().items()):
        m = _prom_name(name, prefix)
        head(f"{m}_seconds_total", name, "counter")
        out.append(f"{m}_seconds_total {_fmt(t.total_s)}")
        head(f"{m}_spans_total", name, "counter")
        out.append(f"{m}_spans_total {t.count}")
    return "\n".join(out) + "\n"


def _prom_escape(text: str) -> str:
    """Escape a ``# HELP`` body per the text exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt(value: float) -> str:
    """Render a number without a trailing ``.0`` for integral values."""
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


def write_snapshot(
    path: str,
    registry: Registry | None = None,
    meta: dict | None = None,
    fmt: str = "json",
) -> None:
    """Write the snapshot to ``path`` as ``json`` or ``prom`` text."""
    if fmt == "json":
        payload = to_json(registry, meta)
    elif fmt == "prom":
        payload = to_prometheus(registry)
    else:
        raise ValueError(f"unknown snapshot format {fmt!r}; expected 'json' or 'prom'")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)
