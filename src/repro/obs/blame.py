"""Straggler blame and critical-path analysis over a recorded trace.

The conservative engine's wall clock decomposes per barrier window as
``max_lp(busy) + C(N)``: every LP that finishes its window early idles
until the slowest LP (the *straggler*) reaches the barrier. This module
turns the tracer's window records into that accounting:

- **per-window straggler identity** — the LP whose modeled busy time set
  the window's wall time;
- **per-LP cumulative blame** — the wall-clock all other LPs spent
  waiting on that LP at barriers, attributed in full to each window's
  straggler (so blame totals sum exactly to the modeled barrier-wait
  time, which is what the timeline report cross-checks);
- **per-node blame** — an LP's blame split over its simulated nodes in
  proportion to the events each node executed (from the trace's event
  samples), naming the hot routers behind a slow partition;
- **the cross-window critical path** — the straggler sequence, with
  *causal handoffs* marked wherever a recorded cross-LP message edge
  shows the previous window's straggler feeding the next one.

Everything here is a pure function of recorded simulated quantities, so
blame reports are exactly reproducible. On an overflowed trace the
analysis covers the retained suffix (check ``trace.dropped_records``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .trace import EdgeRecord, TraceBuffer, WindowRecord

__all__ = [
    "CriticalStep",
    "BlameReport",
    "analyze",
    "blame_shares",
    "node_blame",
    "format_blame_table",
    "MeasuredBlameReport",
    "analyze_measured",
    "format_measured_table",
]


@dataclass(frozen=True)
class CriticalStep:
    """One window of the critical path: who bounded it, for how long."""

    window_index: int
    lp: int
    busy_s: float
    #: True when a recorded message edge shows the previous step's
    #: straggler sent work delivered to this straggler in this window.
    handoff_from_prev: bool


@dataclass(frozen=True)
class BlameReport:
    """Straggler attribution for one traced run."""

    num_lps: int
    num_windows: int
    #: cumulative blame per LP: barrier wait attributed to its windows
    lp_blame_s: np.ndarray
    #: total modeled busy time per LP over all retained windows
    lp_busy_s: np.ndarray
    #: number of windows each LP was the straggler of
    lp_straggler_windows: np.ndarray
    #: sum over windows of sum over LPs of (max busy - busy) — the
    #: quantity ``lp_blame_s`` decomposes exactly
    total_wait_s: float
    #: sum over windows of the straggler's busy time (the modeled
    #: compute part of the wall clock, before barrier costs)
    critical_s: float
    #: modeled barrier wait per window (for distribution summaries)
    window_wait_s: np.ndarray
    critical_path: list[CriticalStep] = field(default_factory=list)
    #: records evicted from the trace before analysis (0 = complete)
    dropped_records: int = 0

    @property
    def handoff_fraction(self) -> float:
        """Share of critical-path steps causally fed by the previous one."""
        steps = [s for s in self.critical_path[1:]]
        if not steps:
            return 0.0
        return sum(s.handoff_from_prev for s in steps) / len(steps)

    @property
    def shares(self) -> np.ndarray:
        """Per-LP blame shares in ``[0, 1]`` (:func:`blame_shares`)."""
        return blame_shares(self.lp_blame_s, self.total_wait_s)


def blame_shares(
    blame_s: np.ndarray, total_wait_s: float | None = None
) -> np.ndarray:
    """Per-LP blame shares, exactly zero when there is no wait at all.

    A single-LP shard or an all-idle run records zero barrier wait in
    every window; dividing by that total would be a ``0/0``. This is the
    one sanctioned place that turns blame seconds into shares: when
    ``total_wait_s`` (defaulting to ``blame_s.sum()``) is not strictly
    positive, every share is exactly ``0.0`` — so the shares still sum
    to a meaningful number (zero) instead of propagating NaN into
    tables, concentration triggers, or exported documents.
    """
    blame = np.asarray(blame_s, dtype=np.float64)
    total = float(blame.sum()) if total_wait_s is None else float(total_wait_s)
    if total <= 0.0:
        return np.zeros_like(blame)
    return blame / total


def _edges_by_window(
    edges: list[EdgeRecord], windows: list[WindowRecord]
) -> dict[int, list[EdgeRecord]]:
    """Bucket edges by the window their delivery time falls into."""
    if not windows:
        return {}
    starts = np.asarray([w.start for w in windows])
    ends = np.asarray([w.end for w in windows])
    out: dict[int, list[EdgeRecord]] = {}
    for e in edges:
        # Cross-LP mail is delivered at the barrier ending the window the
        # send happened in and executes in a later window; attribute the
        # edge to the window containing its deliver time.
        i = int(np.searchsorted(starts, e.deliver_time, side="right")) - 1
        if 0 <= i < len(windows) and e.deliver_time < ends[i]:
            out.setdefault(i, []).append(e)
    return out


def _critical_path(
    windows: list[WindowRecord], edges: list[EdgeRecord]
) -> list[CriticalStep]:
    by_window = _edges_by_window(edges, windows)
    path: list[CriticalStep] = []
    prev: WindowRecord | None = None
    for i, w in enumerate(windows):
        straggler = w.straggler_lp
        handoff = False
        if prev is not None:
            prev_straggler = prev.straggler_lp
            handoff = any(
                e.dst_lp == straggler
                and e.src_lp == prev_straggler
                and prev.start <= e.send_time < prev.end
                for e in by_window.get(i, ())
            )
        path.append(CriticalStep(w.window_index, straggler, w.max_busy_s, handoff))
        prev = w
    return path


def analyze(trace: TraceBuffer, num_lps: int | None = None) -> BlameReport:
    """Compute the blame report for a traced run.

    ``num_lps`` defaults to the width of the recorded window vectors;
    pass it explicitly to analyze an empty trace against a known engine
    size. Blame attribution is *straggler-takes-all*: the whole barrier
    wait of a window is charged to that window's straggler, so
    ``lp_blame_s.sum() == total_wait_s`` exactly.
    """
    windows = list(trace.windows)
    if num_lps is None:
        num_lps = windows[0].num_lps if windows else 0
    L = int(num_lps)
    lp_blame = np.zeros(L, dtype=np.float64)
    lp_busy = np.zeros(L, dtype=np.float64)
    lp_straggler = np.zeros(L, dtype=np.int64)
    window_wait = np.zeros(len(windows), dtype=np.float64)
    critical = 0.0
    for i, w in enumerate(windows):
        if w.num_lps != L:
            raise ValueError(
                f"window {w.window_index} has {w.num_lps} LPs, expected {L}"
            )
        lp_busy += w.busy_s_per_lp
        wait = w.wait_s
        window_wait[i] = wait
        lp_blame[w.straggler_lp] += wait
        lp_straggler[w.straggler_lp] += 1
        critical += w.max_busy_s
    # Summing the blame vector (not the window-wait array) makes the
    # decomposition invariant lp_blame_s.sum() == total_wait_s exact in
    # float arithmetic, not just mathematically.
    return BlameReport(
        num_lps=L,
        num_windows=len(windows),
        lp_blame_s=lp_blame,
        lp_busy_s=lp_busy,
        lp_straggler_windows=lp_straggler,
        total_wait_s=float(lp_blame.sum()),
        critical_s=critical,
        window_wait_s=window_wait,
        critical_path=_critical_path(windows, list(trace.edges)),
        dropped_records=trace.dropped_records,
    )


def node_blame(
    trace: TraceBuffer,
    report: BlameReport,
    assignment: np.ndarray,
    num_nodes: int | None = None,
) -> np.ndarray:
    """Split each LP's blame over its nodes by executed-event share.

    Uses the trace's event samples to weigh nodes within their LP; an LP
    whose blame is nonzero but whose nodes recorded no samples (trace
    overflow, engine-internal events) keeps its blame unattributed —
    the returned vector then sums to less than ``report.lp_blame_s``.
    Events with ``node < 0`` (engine-internal) are never attributed.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    n = int(num_nodes) if num_nodes is not None else int(assignment.shape[0])
    _, nodes = trace.event_samples()
    counts = np.zeros(n, dtype=np.float64)
    valid = (nodes >= 0) & (nodes < n)
    np.add.at(counts, nodes[valid], 1.0)
    out = np.zeros(n, dtype=np.float64)
    for lp in range(report.num_lps):
        blame = report.lp_blame_s[lp]
        if blame <= 0:
            continue
        mask = assignment[:n] == lp
        lp_counts = counts[:n] * mask
        total = lp_counts.sum()
        if total > 0:
            out += blame * lp_counts / total
    return out


def format_blame_table(report: BlameReport) -> str:
    """Render the per-LP blame table (with the sum cross-check row)."""
    lines = [
        f"{'LP':>4}{'busy (ms)':>12}{'blame (ms)':>12}"
        f"{'blame %':>9}{'straggler wins':>16}"
    ]
    total = report.total_wait_s
    shares = report.shares
    for lp in range(report.num_lps):
        share = 100.0 * shares[lp]
        lines.append(
            f"{lp:>4}{report.lp_busy_s[lp] * 1e3:>12.3f}"
            f"{report.lp_blame_s[lp] * 1e3:>12.3f}{share:>8.1f}%"
            f"{report.lp_straggler_windows[lp]:>16}"
        )
    lines.append(
        f"{'sum':>4}{report.lp_busy_s.sum() * 1e3:>12.3f}"
        f"{report.lp_blame_s.sum() * 1e3:>12.3f}{'':>9}"
        f"{int(report.lp_straggler_windows.sum()):>16}"
    )
    lines.append(
        f"barrier wait total {total * 1e3:.3f} ms over "
        f"{report.num_windows} windows (blame sums to it exactly)"
    )
    if report.dropped_records:
        lines.append(
            f"note: trace overflowed ({report.dropped_records} records "
            f"dropped); blame covers the retained suffix"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Measured mode: wall-clock decomposition from worker-recorded spans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MeasuredBlameReport:
    """Wall-clock attribution from *measured* per-window worker spans.

    Where :class:`BlameReport` works on modeled busy times (event counts
    times cost-model rates), this report decomposes the wall clock the
    multi-process backend actually spent: each worker records execute /
    mail-encode / barrier-wait / mail-decode spans per window
    (:class:`~repro.obs.trace.MeasuredWindowRecord`), and the straggler
    of a window is the shard with the largest measured total.
    """

    num_shards: int
    num_windows: int
    #: measured seconds per shard, one vector per span kind
    shard_execute_s: np.ndarray
    shard_encode_s: np.ndarray
    shard_wait_s: np.ndarray
    shard_decode_s: np.ndarray
    #: events executed and mail bytes shipped per shard
    shard_events: np.ndarray
    shard_mail_bytes: np.ndarray
    #: windows each shard was the measured straggler of
    shard_straggler_windows: np.ndarray
    #: sum over windows of the straggler's measured total — the measured
    #: analogue of the modeled ``critical_s``
    critical_s: float
    dropped_records: int = 0

    @property
    def shard_total_s(self) -> np.ndarray:
        """Total measured seconds per shard across all span kinds."""
        return (
            self.shard_execute_s
            + self.shard_encode_s
            + self.shard_wait_s
            + self.shard_decode_s
        )

    @property
    def shares(self) -> np.ndarray:
        """Per-shard measured blame shares (:func:`blame_shares`).

        Blame here is the wait *other* shards spent on each shard's
        straggler windows, approximated by the shard's straggler-window
        share of total measured wait; exactly zero everywhere when no
        shard ever waited (single-shard runs).
        """
        wait_total = float(self.shard_wait_s.sum())
        if wait_total <= 0.0 or self.num_windows == 0:
            return np.zeros(self.num_shards, dtype=np.float64)
        wins = self.shard_straggler_windows.astype(np.float64)
        return blame_shares(wins, float(wins.sum()))


def analyze_measured(
    trace: TraceBuffer, num_shards: int | None = None
) -> MeasuredBlameReport:
    """Decompose measured worker spans into a per-shard blame report.

    Works on any trace carrying ``measured`` records — a worker's own
    buffer, or (the usual case) the restored merge of every worker's
    snapshot (:meth:`repro.obs.distributed.TraceSnapshot.restore`).
    ``num_shards`` defaults to one past the largest shard id seen.
    """
    records = list(trace.measured)
    if num_shards is None:
        num_shards = 1 + max((r.shard_id for r in records), default=-1)
    S = max(int(num_shards), 0)
    execute = np.zeros(S, dtype=np.float64)
    encode = np.zeros(S, dtype=np.float64)
    wait = np.zeros(S, dtype=np.float64)
    decode = np.zeros(S, dtype=np.float64)
    events = np.zeros(S, dtype=np.float64)
    mail = np.zeros(S, dtype=np.float64)
    straggler = np.zeros(S, dtype=np.int64)
    by_window: dict[int, tuple[int, float]] = {}
    for r in records:
        if not 0 <= r.shard_id < S:
            raise ValueError(f"measured record names shard {r.shard_id} of {S}")
        execute[r.shard_id] += r.execute_s
        encode[r.shard_id] += r.mail_encode_s
        wait[r.shard_id] += r.barrier_wait_s
        decode[r.shard_id] += r.mail_decode_s
        events[r.shard_id] += r.events
        mail[r.shard_id] += r.mail_bytes
        best = by_window.get(r.window_index)
        if best is None or r.total_s > best[1]:
            by_window[r.window_index] = (r.shard_id, r.total_s)
    critical = 0.0
    for shard_id, total in by_window.values():
        straggler[shard_id] += 1
        critical += total
    return MeasuredBlameReport(
        num_shards=S,
        num_windows=len(by_window),
        shard_execute_s=execute,
        shard_encode_s=encode,
        shard_wait_s=wait,
        shard_decode_s=decode,
        shard_events=events,
        shard_mail_bytes=mail,
        shard_straggler_windows=straggler,
        critical_s=critical,
        dropped_records=trace.dropped_records,
    )


def format_measured_table(report: MeasuredBlameReport) -> str:
    """Render the per-shard measured decomposition table."""
    lines = [
        f"{'shard':>6}{'execute (ms)':>14}{'encode (ms)':>13}"
        f"{'wait (ms)':>11}{'decode (ms)':>13}{'events':>9}"
        f"{'mail (B)':>10}{'straggler wins':>16}"
    ]
    for s in range(report.num_shards):
        lines.append(
            f"{s:>6}{report.shard_execute_s[s] * 1e3:>14.3f}"
            f"{report.shard_encode_s[s] * 1e3:>13.3f}"
            f"{report.shard_wait_s[s] * 1e3:>11.3f}"
            f"{report.shard_decode_s[s] * 1e3:>13.3f}"
            f"{int(report.shard_events[s]):>9}"
            f"{int(report.shard_mail_bytes[s]):>10}"
            f"{report.shard_straggler_windows[s]:>16}"
        )
    lines.append(
        f"{'sum':>6}{report.shard_execute_s.sum() * 1e3:>14.3f}"
        f"{report.shard_encode_s.sum() * 1e3:>13.3f}"
        f"{report.shard_wait_s.sum() * 1e3:>11.3f}"
        f"{report.shard_decode_s.sum() * 1e3:>13.3f}"
        f"{int(report.shard_events.sum()):>9}"
        f"{int(report.shard_mail_bytes.sum()):>10}"
        f"{int(report.shard_straggler_windows.sum()):>16}"
    )
    lines.append(
        f"measured critical path {report.critical_s * 1e3:.3f} ms over "
        f"{report.num_windows} windows (straggler totals)"
    )
    if report.dropped_records:
        lines.append(
            f"note: trace overflowed ({report.dropped_records} records "
            f"dropped); decomposition covers the retained suffix"
        )
    return "\n".join(lines)
