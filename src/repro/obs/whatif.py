"""What-if mapping replay: score candidate mappings from one traced run.

The virtual network's behavior does not depend on the node -> engine
mapping (DESIGN.md's soundness argument), so the event and transmission
samples one traced run records can be *re-binned* under any candidate
:class:`~repro.core.mapping.NetworkMapping` — each candidate's own
window length (its achieved MLL) and LP assignment — and pushed through
the cluster cost model, scoring TOP/PROF/HTOP/HPROF alternatives
without re-simulating. This is the observe -> attribute -> repartition
loop: a blame report says *which* LP stalls the barrier, the what-if
replay says how much a different mapping would help.

Scores agree with :func:`repro.engine.costmodel.predict_wallclock` on
densely re-binned counts to float precision (enforced by tests); on an
overflowed trace they cover the retained suffix only, so check
``trace.dropped_records`` before trusting absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.syncmodel import ClusterSpec
from ..core.mapping import NetworkMapping
from ..engine.costmodel import (
    WallclockPrediction,
    bucket_event_counts,
    predict_from_trace,
    remote_send_counts,
    window_for_mapping,
)
from .trace import TraceBuffer

__all__ = ["WhatIfScore", "replay_counts", "score_mapping", "score_mappings",
           "score_lp_placements", "format_whatif_table"]


@dataclass(frozen=True)
class WhatIfScore:
    """One candidate mapping's modeled outcome on the recorded run."""

    label: str
    mapping: NetworkMapping
    #: the candidate's synchronization window (its achieved MLL, clamped)
    window_s: float
    prediction: WallclockPrediction

    @property
    def total_s(self) -> float:
        """Modeled wall-clock of the recorded run under this mapping."""
        return self.prediction.total_s


def replay_counts(
    trace: TraceBuffer,
    assignment: np.ndarray,
    num_lps: int,
    window_s: float,
    end_time: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Re-bin the trace's per-node event/send samples under a mapping.

    Returns dense ``(windows, lps)`` event and remote-send count arrays
    — the re-binning primitive behind :func:`score_mapping`, exposed so
    tests and notebooks can cross-check the sparse scoring path against
    :func:`~repro.engine.costmodel.predict_wallclock` on dense counts.
    """
    times, nodes = trace.event_samples()
    tx_t, tx_f, tx_to = trace.tx_samples()
    events = bucket_event_counts(times, nodes, assignment, num_lps, window_s, end_time)
    remotes = remote_send_counts(
        tx_t, tx_f, tx_to, assignment, num_lps, window_s, end_time
    )
    return events, remotes


def score_mapping(
    trace: TraceBuffer,
    mapping: NetworkMapping,
    cluster: ClusterSpec,
    end_time: float,
) -> WallclockPrediction:
    """Cost-model prediction for one candidate mapping on the trace."""
    times, nodes = trace.event_samples()
    tx_t, tx_f, tx_to = trace.tx_samples()
    window = window_for_mapping(mapping.achieved_mll_s, end_time)
    return predict_from_trace(
        times,
        nodes,
        mapping.assignment,
        mapping.num_engines,
        window,
        end_time,
        cluster,
        tx_t,
        tx_f,
        tx_to,
    )


def score_mappings(
    trace: TraceBuffer,
    mappings: dict[str, NetworkMapping],
    cluster: ClusterSpec,
    end_time: float,
) -> list[WhatIfScore]:
    """Score every candidate mapping, best (lowest total) first."""
    scores = [
        WhatIfScore(
            label=label,
            mapping=mapping,
            window_s=window_for_mapping(mapping.achieved_mll_s, end_time),
            prediction=score_mapping(trace, mapping, cluster, end_time),
        )
        for label, mapping in mappings.items()
    ]
    scores.sort(key=lambda s: s.total_s)
    return scores


def score_lp_placements(
    busy_per_lp: np.ndarray,
    layouts: list[np.ndarray],
    num_shards: int,
    sync_cost_s: float = 0.0,
) -> list[float]:
    """Window-max wall of candidate LP -> shard layouts, no re-simulation.

    The mid-run variant of :func:`score_mapping`: where the offline
    what-if replay re-bins node samples under a whole candidate
    *mapping* (its own window length), the online re-balancer keeps the
    run's window structure and node -> LP assignment fixed and varies
    only LP -> shard placement. ``busy_per_lp`` is a ``(windows, lps)``
    modeled busy-time matrix (the trailing history the re-balancer
    maintains); each layout is an LP -> shard vector. A layout's score
    is the paper's window-max model over that history::

        sum over windows of ( max over shards of shard busy + sync )

    so candidates are comparable with the cost model the blame report
    already speaks, and the choice is deterministic given the history.
    """
    busy = np.asarray(busy_per_lp, dtype=np.float64)
    if busy.ndim != 2:
        raise ValueError("busy_per_lp must be a (windows, lps) matrix")
    num_windows = busy.shape[0]
    scores: list[float] = []
    for layout in layouts:
        shard_of = np.asarray(layout, dtype=np.int64)
        if shard_of.shape[0] != busy.shape[1]:
            raise ValueError("layout length must match the LP count")
        shard_busy = np.zeros((num_windows, num_shards), dtype=np.float64)
        for shard in range(num_shards):
            cols = shard_of == shard
            if cols.any():
                shard_busy[:, shard] = busy[:, cols].sum(axis=1)
        walls = shard_busy.max(axis=1) if num_shards else np.zeros(num_windows)
        scores.append(float(walls.sum() + sync_cost_s * num_windows))
    return scores


def format_whatif_table(scores: list[WhatIfScore]) -> str:
    """Render the what-if comparison (one row per candidate mapping)."""
    lines = [
        f"{'mapping':>10}{'T (s)':>12}{'compute (s)':>13}{'sync (s)':>11}"
        f"{'windows':>9}{'MLL (ms)':>10}"
    ]
    best = scores[0].total_s if scores else 0.0
    for s in scores:
        marker = "  <== best" if s.total_s == best else ""
        lines.append(
            f"{s.label:>10}{s.prediction.total_s:>12.4f}"
            f"{s.prediction.compute_s:>13.4f}{s.prediction.sync_s:>11.4f}"
            f"{s.prediction.num_windows:>9}{s.mapping.achieved_mll_ms:>10.3f}{marker}"
        )
    return "\n".join(lines)
