"""Canonical instrument names shared by hook points and consumers.

Instrumented modules (engine, netsim, BGP) and consumers (the profile
bridge, exporters, tests) must agree on names; defining them once here
keeps the contract greppable and typo-proof. Naming convention:
``<subsystem>.<object>.<quantity>``, dotted — exporters translate to
their target format's conventions (Prometheus underscores).
"""

from __future__ import annotations

__all__ = [
    "ENGINE_EVENTS",
    "ENGINE_WINDOWS",
    "ENGINE_LP_EVENTS",
    "ENGINE_LP_REMOTE_SENDS",
    "ENGINE_WINDOW_EVENTS_HIST",
    "ENGINE_BARRIER_WAIT",
    "ENGINE_LOOKAHEAD_VIOLATIONS",
    "PARALLEL_BARRIER_WAIT",
    "PARALLEL_MAIL_BYTES",
    "PARALLEL_WORKER_EVENTS",
    "PARALLEL_WINDOW_EXECUTE",
    "PARALLEL_MAIL_ENCODE",
    "PARALLEL_MAIL_DECODE",
    "CALIBRATION_WINDOWS",
    "CALIBRATION_RATIO",
    "CALIBRATION_MEASURED_WALL",
    "CALIBRATION_PREDICTED_WALL",
    "NETSIM_NODE_EVENTS",
    "NETSIM_NODE_RATE_BINS",
    "NETSIM_LINK_BYTES",
    "NETSIM_LINK_PACKETS",
    "NETSIM_LINK_DROPS",
    "NETSIM_LINK_QUEUE_HWM",
    "NETSIM_PACKETS_SENT",
    "NETSIM_PACKETS_DELIVERED",
    "NETSIM_PACKETS_DROPPED_QUEUE",
    "NETSIM_PACKETS_DROPPED_TTL",
    "NETSIM_PACKETS_UNROUTABLE",
    "BGP_UPDATES_SENT",
    "BGP_UPDATES_RECEIVED",
    "BGP_DECISIONS",
    "BGP_ITERATIONS",
    "BGP_CONVERGENCE",
    "FAULTS_INJECTED",
    "FAULTS_LINK_TRANSITIONS",
    "FAULTS_ROUTER_TRANSITIONS",
    "FAULTS_ROUTE_INVALIDATIONS",
    "FAULTS_BGP_SESSION_RESETS",
    "FAULTS_BGP_REESTABLISHED",
    "REBALANCE_TRIGGERS",
    "REBALANCE_MIGRATIONS",
    "REBALANCE_CANDIDATES",
    "REBALANCE_STATE_BYTES",
    "REBALANCE_CONCENTRATION",
    "RECOVERY_CHECKPOINTS",
    "RECOVERY_CHECKPOINT_BYTES",
    "RECOVERY_DETECTIONS",
    "RECOVERY_RESPAWNS",
    "RECOVERY_REPLAYED",
    "RECOVERY_ADOPTIONS",
    "LINT_FILES",
    "LINT_RULES",
    "LINT_FINDINGS_ERROR",
    "LINT_FINDINGS_WARNING",
    "LINT_FINDINGS_INFO",
    "LINT_WALL",
    "HELP",
    "help_for",
]

# --- conservative parallel engine ------------------------------------
#: total events executed (scalar)
ENGINE_EVENTS = "engine.events.executed"
#: synchronization windows completed (scalar)
ENGINE_WINDOWS = "engine.windows.completed"
#: events executed per LP, accumulated over windows (vector[num_lps])
ENGINE_LP_EVENTS = "engine.lp.events"
#: cross-LP events sent per LP (vector[num_lps])
ENGINE_LP_REMOTE_SENDS = "engine.lp.remote_sends"
#: distribution of per-window total event counts (histogram)
ENGINE_WINDOW_EVENTS_HIST = "engine.window.events"
#: wall-clock spent delivering cross-LP mail at barriers (span timer)
ENGINE_BARRIER_WAIT = "engine.barrier.wait"
#: tolerated lookahead violations (scalar; strict engines raise instead)
ENGINE_LOOKAHEAD_VIOLATIONS = "engine.lookahead.violations"

# --- multi-process backend (repro.engine.parallel) --------------------
# These are recorded *inside each worker process* (shard-labeled) and
# reach the controller through repro.obs.distributed snapshot merging.
#: per-worker wall-clock blocked at barriers, one sample per worker per
#: window (histogram)
PARALLEL_BARRIER_WAIT = "parallel.barrier.wait_s"
#: serialized cross-shard mail volume shipped over worker pipes (scalar)
PARALLEL_MAIL_BYTES = "parallel.mail.bytes"
#: events executed per worker process (vector[procs])
PARALLEL_WORKER_EVENTS = "parallel.worker.events"
#: per-worker wall-clock executing window events (span timer)
PARALLEL_WINDOW_EXECUTE = "parallel.window.execute"
#: per-worker wall-clock serializing outbound mail batches (span timer)
PARALLEL_MAIL_ENCODE = "parallel.mail.encode"
#: per-worker wall-clock decoding + enqueueing inbound mail (span timer)
PARALLEL_MAIL_DECODE = "parallel.mail.decode"

# --- measured-vs-modeled window calibration (repro.obs.distributed) ---
#: windows with both a measured and a predicted wall-clock (scalar)
CALIBRATION_WINDOWS = "calibration.windows.compared"
#: distribution of per-window measured/predicted wall ratios (histogram)
CALIBRATION_RATIO = "calibration.window.ratio"
#: summed measured per-window wall-clock, seconds (scalar)
CALIBRATION_MEASURED_WALL = "calibration.measured.wall_s"
#: summed cost-model predicted per-window wall-clock, seconds (scalar)
CALIBRATION_PREDICTED_WALL = "calibration.predicted.wall_s"

# --- packet-level network simulator ----------------------------------
#: packets handled per node — the PROF load signal (vector[num_nodes])
NETSIM_NODE_EVENTS = "netsim.node.events"
#: per-node event counts binned over simulated time — Figure 3 (series)
NETSIM_NODE_RATE_BINS = "netsim.node.rate_bins"
#: bytes carried per link, both directions (vector[num_links])
NETSIM_LINK_BYTES = "netsim.link.bytes"
#: packets carried per link (vector[num_links])
NETSIM_LINK_PACKETS = "netsim.link.packets"
#: packets dropped per link (vector[num_links])
NETSIM_LINK_DROPS = "netsim.link.drops"
#: queue-backlog high-water mark per link, bytes (max gauge[num_links])
NETSIM_LINK_QUEUE_HWM = "netsim.link.queue_hwm_bytes"
#: aggregate packet counters (scalars)
NETSIM_PACKETS_SENT = "netsim.packets.sent"
NETSIM_PACKETS_DELIVERED = "netsim.packets.delivered"
NETSIM_PACKETS_DROPPED_QUEUE = "netsim.packets.dropped_queue"
NETSIM_PACKETS_DROPPED_TTL = "netsim.packets.dropped_ttl"
NETSIM_PACKETS_UNROUTABLE = "netsim.packets.unroutable"

# --- BGP machinery ----------------------------------------------------
#: route announcements exported to neighbors (scalar)
BGP_UPDATES_SENT = "bgp.updates.sent"
#: announcements surviving receiver-side loop filtering (scalar)
BGP_UPDATES_RECEIVED = "bgp.updates.received"
#: decision-process (best-route selection) invocations (scalar)
BGP_DECISIONS = "bgp.decisions"
#: synchronous propagation rounds until the last fixed point (scalar)
BGP_ITERATIONS = "bgp.iterations"
#: wall-clock span of each convergence run (span timer)
BGP_CONVERGENCE = "bgp.convergence"

# --- fault injection (repro.faults) -----------------------------------
#: scheduled fault events applied by the injector (scalar)
FAULTS_INJECTED = "faults.injected"
#: link state transitions (down + up) applied by the injector (scalar)
FAULTS_LINK_TRANSITIONS = "faults.link.transitions"
#: router state transitions (crash + restart) applied (scalar)
FAULTS_ROUTER_TRANSITIONS = "faults.router.transitions"
#: forwarding-state invalidations forced by fault transitions (scalar)
FAULTS_ROUTE_INVALIDATIONS = "faults.route.invalidations"
#: BGP session teardowns (withdrawal propagations) triggered (scalar)
FAULTS_BGP_SESSION_RESETS = "faults.bgp.session_resets"
#: BGP sessions re-established after backoff retries (scalar)
FAULTS_BGP_REESTABLISHED = "faults.bgp.session_reestablished"

# --- online re-partitioning (repro.partition.rebalance) ---------------
# Recorded on the controller: migration decisions are made centrally so
# the instruments never disagree across shards.
#: blame-concentration threshold crossings that produced a decision (scalar)
REBALANCE_TRIGGERS = "rebalance.triggers"
#: single-LP migrations executed at barriers (scalar)
REBALANCE_MIGRATIONS = "rebalance.migrations"
#: candidate placements scored by the what-if model (scalar)
REBALANCE_CANDIDATES = "rebalance.candidates.scored"
#: serialized migration payload bytes shipped over the control plane (scalar)
REBALANCE_STATE_BYTES = "rebalance.state.bytes"
#: distribution of blame concentration at each trigger (histogram)
REBALANCE_CONCENTRATION = "rebalance.blame.concentration"

# --- fault tolerance (repro.engine.recovery) ---------------------------
# Recorded on the controller: checkpoints are committed and worker
# deaths declared centrally, so the instruments never disagree across
# shards (and survive the death of the worker they describe).
#: barrier checkpoints committed across all shards (scalar)
RECOVERY_CHECKPOINTS = "recovery.checkpoints.taken"
#: serialized checkpoint blob bytes shipped over the control plane (scalar)
RECOVERY_CHECKPOINT_BYTES = "recovery.checkpoint.bytes"
#: worker crashes/hangs detected by liveness supervision (scalar)
RECOVERY_DETECTIONS = "recovery.detections"
#: worker respawn attempts launched after a detection (scalar)
RECOVERY_RESPAWNS = "recovery.respawns"
#: barrier windows re-executed from retained mail during recovery (scalar)
RECOVERY_REPLAYED = "recovery.windows.replayed"
#: degraded adoptions: dead shards folded onto a survivor (scalar)
RECOVERY_ADOPTIONS = "recovery.adoptions.degraded"

# --- static analysis (repro.analysis simlint runs) --------------------
#: python files scanned by one lint invocation (scalar)
LINT_FILES = "lint.files.scanned"
#: lint rules executed (scalar)
LINT_RULES = "lint.rules.run"
#: findings by severity (scalars)
LINT_FINDINGS_ERROR = "lint.findings.error"
LINT_FINDINGS_WARNING = "lint.findings.warning"
LINT_FINDINGS_INFO = "lint.findings.info"
#: wall-clock span of the whole lint pass (span timer)
LINT_WALL = "lint.wall"

# --- exporter help text ----------------------------------------------
#: One-line ``# HELP`` text per instrument, keyed by canonical name.
#: The names-drift test asserts every constant above has an entry, so a
#: new instrument cannot ship without scrape-side documentation.
HELP: dict[str, str] = {
    ENGINE_EVENTS: "Total events executed by the conservative engine.",
    ENGINE_WINDOWS: "Synchronization windows completed.",
    ENGINE_LP_EVENTS: "Events executed per logical process.",
    ENGINE_LP_REMOTE_SENDS: "Cross-LP events sent per logical process.",
    ENGINE_WINDOW_EVENTS_HIST: "Distribution of per-window total event counts.",
    ENGINE_BARRIER_WAIT: "Wall-clock spent delivering cross-LP mail at barriers.",
    ENGINE_LOOKAHEAD_VIOLATIONS: "Tolerated lookahead violations (strict engines raise).",
    PARALLEL_BARRIER_WAIT: "Per-worker wall-clock blocked at multi-process barriers, one sample per window.",
    PARALLEL_MAIL_BYTES: "Serialized cross-shard mail bytes shipped between workers.",
    PARALLEL_WORKER_EVENTS: "Events executed per worker process.",
    PARALLEL_WINDOW_EXECUTE: "Per-worker wall-clock executing window events.",
    PARALLEL_MAIL_ENCODE: "Per-worker wall-clock serializing outbound mail batches.",
    PARALLEL_MAIL_DECODE: "Per-worker wall-clock decoding and enqueueing inbound mail.",
    CALIBRATION_WINDOWS: "Windows with both a measured and a predicted wall-clock.",
    CALIBRATION_RATIO: "Distribution of per-window measured/predicted wall ratios.",
    CALIBRATION_MEASURED_WALL: "Summed measured per-window wall-clock in seconds.",
    CALIBRATION_PREDICTED_WALL: "Summed cost-model predicted per-window wall-clock in seconds.",
    NETSIM_NODE_EVENTS: "Packets handled per node (the PROF load signal).",
    NETSIM_NODE_RATE_BINS: "Per-node event counts binned over simulated time.",
    NETSIM_LINK_BYTES: "Bytes carried per link, both directions.",
    NETSIM_LINK_PACKETS: "Packets carried per link, both directions.",
    NETSIM_LINK_DROPS: "Packets dropped per link.",
    NETSIM_LINK_QUEUE_HWM: "Queue-backlog high-water mark per link in bytes.",
    NETSIM_PACKETS_SENT: "Packets injected by transport endpoints.",
    NETSIM_PACKETS_DELIVERED: "Packets delivered to their destination node.",
    NETSIM_PACKETS_DROPPED_QUEUE: "Packets dropped at full link queues.",
    NETSIM_PACKETS_DROPPED_TTL: "Packets dropped on TTL expiry.",
    NETSIM_PACKETS_UNROUTABLE: "Packets with no forwarding-table next hop.",
    BGP_UPDATES_SENT: "Route announcements exported to neighbors.",
    BGP_UPDATES_RECEIVED: "Announcements surviving receiver-side loop filtering.",
    BGP_DECISIONS: "Decision-process (best-route selection) invocations.",
    BGP_ITERATIONS: "Synchronous propagation rounds to the last fixed point.",
    BGP_CONVERGENCE: "Wall-clock span of each convergence run.",
    FAULTS_INJECTED: "Scheduled fault events applied by the injector.",
    FAULTS_LINK_TRANSITIONS: "Link state transitions (down and up) applied.",
    FAULTS_ROUTER_TRANSITIONS: "Router crash and restart transitions applied.",
    FAULTS_ROUTE_INVALIDATIONS: "Forwarding-state invalidations forced by faults.",
    FAULTS_BGP_SESSION_RESETS: "BGP session teardowns (withdrawal propagations).",
    FAULTS_BGP_REESTABLISHED: "BGP sessions re-established after backoff retries.",
    REBALANCE_TRIGGERS: "Blame-concentration threshold crossings that produced a migration decision.",
    REBALANCE_MIGRATIONS: "Single-LP migrations executed at barriers.",
    REBALANCE_CANDIDATES: "Candidate placements scored by the what-if model.",
    REBALANCE_STATE_BYTES: "Serialized migration payload bytes shipped over the control plane.",
    REBALANCE_CONCENTRATION: "Distribution of blame concentration at each rebalance trigger.",
    RECOVERY_CHECKPOINTS: "Barrier checkpoints committed across all shards.",
    RECOVERY_CHECKPOINT_BYTES: "Serialized checkpoint blob bytes shipped over the control plane.",
    RECOVERY_DETECTIONS: "Worker crashes and hangs detected by liveness supervision.",
    RECOVERY_RESPAWNS: "Worker respawn attempts launched after a detection.",
    RECOVERY_REPLAYED: "Barrier windows re-executed from retained mail during recovery.",
    RECOVERY_ADOPTIONS: "Degraded adoptions of a dead shard's LPs by a survivor.",
    LINT_FILES: "Python files scanned by the simlint pass.",
    LINT_RULES: "Lint rules executed by the simlint pass.",
    LINT_FINDINGS_ERROR: "Error-severity lint findings.",
    LINT_FINDINGS_WARNING: "Warning-severity lint findings.",
    LINT_FINDINGS_INFO: "Info-severity lint findings.",
    LINT_WALL: "Wall-clock span of the whole simlint pass.",
}


def help_for(name: str) -> str:
    """The ``# HELP`` line body for ``name`` (generic text if unknown)."""
    return HELP.get(name, f"Instrument {name}.")
