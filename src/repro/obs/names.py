"""Canonical instrument names shared by hook points and consumers.

Instrumented modules (engine, netsim, BGP) and consumers (the profile
bridge, exporters, tests) must agree on names; defining them once here
keeps the contract greppable and typo-proof. Naming convention:
``<subsystem>.<object>.<quantity>``, dotted — exporters translate to
their target format's conventions (Prometheus underscores).
"""

from __future__ import annotations

__all__ = [
    "ENGINE_EVENTS",
    "ENGINE_WINDOWS",
    "ENGINE_LP_EVENTS",
    "ENGINE_LP_REMOTE_SENDS",
    "ENGINE_WINDOW_EVENTS_HIST",
    "ENGINE_BARRIER_WAIT",
    "ENGINE_LOOKAHEAD_VIOLATIONS",
    "NETSIM_NODE_EVENTS",
    "NETSIM_NODE_RATE_BINS",
    "NETSIM_LINK_BYTES",
    "NETSIM_LINK_PACKETS",
    "NETSIM_LINK_DROPS",
    "NETSIM_LINK_QUEUE_HWM",
    "NETSIM_PACKETS_SENT",
    "NETSIM_PACKETS_DELIVERED",
    "NETSIM_PACKETS_DROPPED_QUEUE",
    "NETSIM_PACKETS_DROPPED_TTL",
    "NETSIM_PACKETS_UNROUTABLE",
    "BGP_UPDATES_SENT",
    "BGP_UPDATES_RECEIVED",
    "BGP_DECISIONS",
    "BGP_ITERATIONS",
    "BGP_CONVERGENCE",
]

# --- conservative parallel engine ------------------------------------
#: total events executed (scalar)
ENGINE_EVENTS = "engine.events.executed"
#: synchronization windows completed (scalar)
ENGINE_WINDOWS = "engine.windows.completed"
#: events executed per LP, accumulated over windows (vector[num_lps])
ENGINE_LP_EVENTS = "engine.lp.events"
#: cross-LP events sent per LP (vector[num_lps])
ENGINE_LP_REMOTE_SENDS = "engine.lp.remote_sends"
#: distribution of per-window total event counts (histogram)
ENGINE_WINDOW_EVENTS_HIST = "engine.window.events"
#: wall-clock spent delivering cross-LP mail at barriers (span timer)
ENGINE_BARRIER_WAIT = "engine.barrier.wait"
#: tolerated lookahead violations (scalar; strict engines raise instead)
ENGINE_LOOKAHEAD_VIOLATIONS = "engine.lookahead.violations"

# --- packet-level network simulator ----------------------------------
#: packets handled per node — the PROF load signal (vector[num_nodes])
NETSIM_NODE_EVENTS = "netsim.node.events"
#: per-node event counts binned over simulated time — Figure 3 (series)
NETSIM_NODE_RATE_BINS = "netsim.node.rate_bins"
#: bytes carried per link, both directions (vector[num_links])
NETSIM_LINK_BYTES = "netsim.link.bytes"
#: packets carried per link (vector[num_links])
NETSIM_LINK_PACKETS = "netsim.link.packets"
#: packets dropped per link (vector[num_links])
NETSIM_LINK_DROPS = "netsim.link.drops"
#: queue-backlog high-water mark per link, bytes (max gauge[num_links])
NETSIM_LINK_QUEUE_HWM = "netsim.link.queue_hwm_bytes"
#: aggregate packet counters (scalars)
NETSIM_PACKETS_SENT = "netsim.packets.sent"
NETSIM_PACKETS_DELIVERED = "netsim.packets.delivered"
NETSIM_PACKETS_DROPPED_QUEUE = "netsim.packets.dropped_queue"
NETSIM_PACKETS_DROPPED_TTL = "netsim.packets.dropped_ttl"
NETSIM_PACKETS_UNROUTABLE = "netsim.packets.unroutable"

# --- BGP machinery ----------------------------------------------------
#: route announcements exported to neighbors (scalar)
BGP_UPDATES_SENT = "bgp.updates.sent"
#: announcements surviving receiver-side loop filtering (scalar)
BGP_UPDATES_RECEIVED = "bgp.updates.received"
#: decision-process (best-route selection) invocations (scalar)
BGP_DECISIONS = "bgp.decisions"
#: synchronous propagation rounds until the last fixed point (scalar)
BGP_ITERATIONS = "bgp.iterations"
#: wall-clock span of each convergence run (span timer)
BGP_CONVERGENCE = "bgp.convergence"
