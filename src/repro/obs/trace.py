"""Bounded structured trace: causal window records behind one guard branch.

Where the registry (:mod:`repro.obs.registry`) aggregates — totals,
histograms, high-water marks — the tracer keeps *individual records*:
one record per barrier window, per cross-LP message edge, per executed
event, per link transmission, per BGP convergence span, per fault
injection or recovery transition (:mod:`repro.faults`). That is the raw
material for straggler attribution (:mod:`repro.obs.blame`), the Chrome
trace-event export (:mod:`repro.obs.trace_export`), and the what-if
mapping replay (:mod:`repro.obs.whatif`).

The tracer follows the registry's design contract exactly:

1. **Cheap when disabled.** Instrumented code resolves the process-global
   :class:`TraceBuffer` once at construction (:func:`get_tracer`); every
   hot-path record afterwards is one attribute load plus one boolean
   guard. Every public record method is guarded, and all mutation funnels
   through the single private :meth:`TraceBuffer._append` —
   ``tests/test_obs_overhead.py`` monkeypatches it to raise and proves a
   disabled run appends nothing.
2. **Bounded.** Each channel is a ring of at most ``capacity`` records;
   appending to a full channel evicts the oldest record and increments
   :attr:`TraceBuffer.dropped_records`. Analyses over an overflowed trace
   operate on the retained suffix (and say so via ``dropped_records``).
3. **Deterministic where it can be.** Window, edge, event, and
   transmission records carry *simulated* quantities only. Span records
   (BGP convergence) are wall-clock and use the sanctioned
   ``perf_counter`` site (this module lives in ``repro/obs``, the one
   package simlint SIM106 exempts).
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = [
    "WindowRecord",
    "EdgeRecord",
    "SpanRecord",
    "FaultRecord",
    "MeasuredWindowRecord",
    "RebalanceRecord",
    "RecoveryRecord",
    "TraceBuffer",
    "get_tracer",
    "traced_run",
    "DEFAULT_TRACE_CAPACITY",
]

#: Default per-channel ring capacity. Sized so the laptop-scale demo
#: scenarios fit without eviction while a runaway trace stays bounded
#: (eight channels of tuples/records, a few tens of MB worst case).
DEFAULT_TRACE_CAPACITY = 262_144


@dataclass(frozen=True)
class WindowRecord:
    """One barrier window as the conservative engine executed it."""

    window_index: int
    #: simulated window bounds
    start: float
    end: float
    #: events executed per LP in this window
    events_per_lp: np.ndarray
    #: cross-LP events sent per LP in this window
    remote_per_lp: np.ndarray
    #: modeled busy time per LP (events*event_cost + remote*remote_cost,
    #: the cost model of :mod:`repro.engine.costmodel`)
    busy_s_per_lp: np.ndarray

    @property
    def num_lps(self) -> int:
        """Number of logical processes in this window."""
        return int(self.events_per_lp.shape[0])

    @property
    def straggler_lp(self) -> int:
        """The LP whose modeled busy time bounds this window's wall time."""
        return int(np.argmax(self.busy_s_per_lp))

    @property
    def max_busy_s(self) -> float:
        """The window's modeled wall time (the straggler's busy time)."""
        return float(self.busy_s_per_lp.max()) if self.busy_s_per_lp.size else 0.0

    @property
    def wait_s(self) -> float:
        """Total modeled barrier wait: sum over LPs of (max busy - busy)."""
        return float((self.max_busy_s - self.busy_s_per_lp).sum())


@dataclass(frozen=True)
class EdgeRecord:
    """One cross-LP message: who sent what to whom, and when."""

    src_lp: int
    dst_lp: int
    #: simulated time the sender created the event
    send_time: float
    #: simulated time the event executes on the destination LP
    deliver_time: float


@dataclass(frozen=True)
class FaultRecord:
    """One fault injection or recovery transition (``repro.faults``).

    ``phase`` is ``'inject'`` for transitions into a degraded state
    (link down, loss burst start, BGP withdrawal) and ``'recover'`` for
    transitions back (link up, session re-establishment, retry
    attempts). ``target`` identifies what the transition applies to —
    a link id, a node id, an LP index, or an AS pair — and ``detail``
    carries kind-specific parameters (loss probability, retry attempt
    number, convergence iteration count).
    """

    #: simulated time the transition was applied
    time: float
    #: dotted transition kind, e.g. ``'link.down'`` or ``'bgp.reestablished'``
    kind: str
    #: ``'inject'`` or ``'recover'``
    phase: str
    target: tuple[int, ...] = ()
    detail: dict = field(default_factory=dict)


@dataclass(frozen=True)
class MeasuredWindowRecord:
    """One barrier window as one *worker process* actually spent it.

    Where :class:`WindowRecord` carries modeled busy time derived from
    event counts, this record carries measured wall-clock: the worker's
    window decomposed into executing events, serializing outbound mail,
    blocking on the barrier round-trip, and decoding inbound mail.
    Recorded per shard per window by the multi-process backend
    (:mod:`repro.engine.parallel`); merged across workers by
    :class:`repro.obs.distributed.TraceSnapshot`. Wall-clock values are
    *not* part of a run's deterministic fingerprint.
    """

    window_index: int
    #: worker/shard that measured this window
    shard_id: int
    #: wall-clock executing the window's owned-LP events
    execute_s: float
    #: wall-clock blocked waiting for the controller's mail round-trip
    barrier_wait_s: float
    #: wall-clock serializing outbound cross-shard mail
    mail_encode_s: float
    #: wall-clock decoding + enqueueing inbound cross-shard mail
    mail_decode_s: float
    #: events the shard executed in this window
    events: int
    #: serialized outbound mail bytes this window
    mail_bytes: int = 0

    @property
    def total_s(self) -> float:
        """The worker's full measured wall-clock for this window."""
        return (
            self.execute_s + self.barrier_wait_s
            + self.mail_encode_s + self.mail_decode_s
        )

    @property
    def busy_s(self) -> float:
        """Measured non-blocked wall-clock (execute + encode + decode)."""
        return self.execute_s + self.mail_encode_s + self.mail_decode_s


@dataclass(frozen=True)
class RebalanceRecord:
    """One accepted mid-run LP migration decision (``partition.rebalance``).

    Recorded on the controller at the barrier where the migration takes
    effect, so the trace doubles as the audit log of every placement
    change: which LP moved, off which blamed shard, at what blame
    concentration, and what the what-if model predicted the move would
    save over the trailing history window.
    """

    #: barrier window index after which the LP executes on ``dst_shard``
    window_index: int
    lp: int
    src_shard: int
    dst_shard: int
    #: trailing blame share of ``src_shard`` when the trigger fired
    concentration: float
    #: what-if predicted wall saved over the trailing history, seconds
    predicted_gain_s: float
    #: serialized migration payload size (0 until the plan is executed)
    state_bytes: int = 0


@dataclass(frozen=True)
class RecoveryRecord:
    """One fault-tolerance action of the mp backend (``engine.recovery``).

    Recorded on the controller, where checkpoints are committed and
    worker deaths declared, so the trace survives the worker it
    describes. ``kind`` is one of ``'checkpoint'`` (a consistent cut
    committed across all shards), ``'detect'`` (a worker declared
    crashed or hung), ``'respawn'`` (a replacement incarnation
    launched), ``'replay'`` (retained-mail windows re-executed), or
    ``'adopt'`` (a dead shard's LPs folded onto a survivor). ``detail``
    carries kind-specific context — digests, exit codes, replay extents.
    """

    #: barrier window index the action is anchored to
    window_index: int
    #: shard the action applies to (the checkpointed/dead/adopting shard)
    shard_id: int
    kind: str
    detail: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SpanRecord:
    """A named wall-clock span (BGP convergence runs and the like)."""

    kind: str
    start_s: float
    end_s: float
    meta: dict = field(default_factory=dict)

    @property
    def elapsed_s(self) -> float:
        """Span duration in wall-clock seconds."""
        return self.end_s - self.start_s


class TraceBuffer:
    """Ring-buffered structured trace channels behind one enable flag.

    Parameters
    ----------
    capacity:
        Maximum records retained per channel; the oldest record of a full
        channel is evicted on append (counted in :attr:`dropped_records`).
    enabled:
        Initial state; the process-global tracer starts disabled so
        untraced runs pay only the guard branch per hook point.
    event_cost_s, remote_event_cost_s:
        Cost-model calibration used to compute each window record's
        modeled per-LP busy time; defaults match
        :class:`repro.cluster.syncmodel.ClusterSpec`. Set per run with
        :meth:`set_costs` (e.g. from the experiment scale's calibration).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        enabled: bool = False,
        event_cost_s: float = 10e-6,
        remote_event_cost_s: float = 25e-6,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.enabled = enabled
        self.event_cost_s = float(event_cost_s)
        self.remote_event_cost_s = float(remote_event_cost_s)
        self.windows: deque[WindowRecord] = deque()
        self.edges: deque[EdgeRecord] = deque()
        self.spans: deque[SpanRecord] = deque()
        #: (time, node) per executed event — what-if replay raw material
        self.events: deque[tuple[float, int]] = deque()
        #: (time, from_node, to_node) per accepted link transmission
        self.transmissions: deque[tuple[float, int, int]] = deque()
        #: fault injections and recovery transitions (repro.faults)
        self.faults: deque[FaultRecord] = deque()
        #: measured per-worker window decompositions (repro.engine.parallel)
        self.measured: deque[MeasuredWindowRecord] = deque()
        #: accepted mid-run LP migrations (repro.partition.rebalance)
        self.rebalance: deque[RebalanceRecord] = deque()
        #: fault-tolerance actions (repro.engine.recovery)
        self.recovery: deque[RecoveryRecord] = deque()
        self.dropped_records = 0

    # ------------------------------------------------------------------
    # State control (mirrors the registry)
    # ------------------------------------------------------------------
    def enable(self) -> None:
        """Turn tracing on (record methods start appending)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn tracing off (record methods become no-ops)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every record and zero the drop counter."""
        for channel in self._channels():
            channel.clear()
        self.dropped_records = 0

    def set_costs(self, event_cost_s: float, remote_event_cost_s: float) -> None:
        """Calibrate the modeled busy time of subsequent window records."""
        if event_cost_s <= 0 or remote_event_cost_s <= 0:
            raise ValueError("event costs must be positive")
        self.event_cost_s = float(event_cost_s)
        self.remote_event_cost_s = float(remote_event_cost_s)

    def _channels(self) -> tuple[deque, ...]:
        return (
            self.windows,
            self.edges,
            self.spans,
            self.events,
            self.transmissions,
            self.faults,
            self.measured,
            self.rebalance,
            self.recovery,
        )

    def __len__(self) -> int:
        return sum(len(c) for c in self._channels())

    # ------------------------------------------------------------------
    # Record methods (guarded public layer; all writes funnel to _append)
    # ------------------------------------------------------------------
    def window(
        self,
        window_index: int,
        start: float,
        end: float,
        events_per_lp: np.ndarray,
        remote_per_lp: np.ndarray,
    ) -> None:
        """Record one completed barrier window (engine barrier hook)."""
        if self.enabled:
            events = np.asarray(events_per_lp, dtype=np.int64).copy()
            remote = np.asarray(remote_per_lp, dtype=np.int64).copy()
            busy = events * self.event_cost_s + remote * self.remote_event_cost_s
            self._append(
                self.windows,
                WindowRecord(int(window_index), float(start), float(end),
                             events, remote, busy),
            )

    def edge(self, src_lp: int, dst_lp: int, send_time: float, deliver_time: float) -> None:
        """Record one cross-LP message edge (engine mailbox hook)."""
        if self.enabled:
            self._append(
                self.edges,
                EdgeRecord(int(src_lp), int(dst_lp), float(send_time), float(deliver_time)),
            )

    def event(self, t: float, node: int) -> None:
        """Record one executed event sample (engine execution hook)."""
        if self.enabled:
            self._append(self.events, (t, node))

    def tx(self, t: float, from_node: int, to_node: int) -> None:
        """Record one link transmission sample (netsim forwarding hook)."""
        if self.enabled:
            self._append(self.transmissions, (t, from_node, to_node))

    def fault(
        self,
        t: float,
        kind: str,
        phase: str,
        target: tuple[int, ...] = (),
        **detail,
    ) -> None:
        """Record one fault injection or recovery transition."""
        if self.enabled:
            self._append(
                self.faults, FaultRecord(float(t), kind, phase, tuple(target), detail)
            )

    def measured_window(
        self,
        window_index: int,
        shard_id: int,
        execute_s: float,
        barrier_wait_s: float,
        mail_encode_s: float,
        mail_decode_s: float,
        events: int,
        mail_bytes: int = 0,
    ) -> None:
        """Record one worker's measured window decomposition (mp backend)."""
        if self.enabled:
            self._append(
                self.measured,
                MeasuredWindowRecord(
                    int(window_index), int(shard_id), float(execute_s),
                    float(barrier_wait_s), float(mail_encode_s),
                    float(mail_decode_s), int(events), int(mail_bytes),
                ),
            )

    def migration(
        self,
        window_index: int,
        lp: int,
        src_shard: int,
        dst_shard: int,
        concentration: float,
        predicted_gain_s: float,
        state_bytes: int = 0,
    ) -> None:
        """Record one accepted LP migration (controller barrier hook)."""
        if self.enabled:
            self._append(
                self.rebalance,
                RebalanceRecord(
                    int(window_index), int(lp), int(src_shard), int(dst_shard),
                    float(concentration), float(predicted_gain_s),
                    int(state_bytes),
                ),
            )

    def recovery_step(
        self, window_index: int, shard_id: int, kind: str, **detail
    ) -> None:
        """Record one fault-tolerance action (controller recovery hook)."""
        if self.enabled:
            self._append(
                self.recovery,
                RecoveryRecord(int(window_index), int(shard_id), kind, detail),
            )

    def span_begin(self) -> float:
        """Open a wall-clock span; returns a token (``-1.0`` when disabled)."""
        if self.enabled:
            return time.perf_counter()
        return -1.0

    def span_end(self, token: float, kind: str, **meta) -> None:
        """Close the span opened by :meth:`span_begin` under ``kind``."""
        if token >= 0.0 and self.enabled:
            self._append(self.spans, SpanRecord(kind, token, time.perf_counter(), meta))

    def _append(self, channel: deque, record) -> None:
        if len(channel) >= self.capacity:
            channel.popleft()
            self.dropped_records += 1
        channel.append(record)

    # ------------------------------------------------------------------
    # Array views (analysis consumers)
    # ------------------------------------------------------------------
    def event_samples(self) -> tuple[np.ndarray, np.ndarray]:
        """Retained executed-event samples as ``(times, nodes)`` arrays."""
        if not self.events:
            return np.zeros(0, dtype=np.float64), np.zeros(0, dtype=np.int64)
        times, nodes = zip(*self.events)
        return (
            np.asarray(times, dtype=np.float64),
            np.asarray(nodes, dtype=np.int64),
        )

    def tx_samples(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Retained transmission samples as ``(times, from, to)`` arrays."""
        if not self.transmissions:
            z = np.zeros(0, dtype=np.int64)
            return np.zeros(0, dtype=np.float64), z, z.copy()
        times, src, dst = zip(*self.transmissions)
        return (
            np.asarray(times, dtype=np.float64),
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
        )


#: The process-global tracer every instrumented component binds to.
_GLOBAL = TraceBuffer()


def get_tracer() -> TraceBuffer:
    """The process-global :class:`TraceBuffer` (disabled by default)."""
    return _GLOBAL


@contextmanager
def traced_run(
    tracer: TraceBuffer | None = None,
    reset_first: bool = True,
    capacity: int | None = None,
) -> Iterator[TraceBuffer]:
    """Enable (and by default reset) a tracer for the duration of a run.

    The canonical scoping for one traced simulation::

        with traced_run() as tr:
            engine.run(until=duration)
        report = blame.analyze(tr, cluster)

    The previous enabled state (and capacity, if overridden) is restored
    on exit, so nesting inside an already-traced region keeps tracing on.
    """
    tr = tracer if tracer is not None else _GLOBAL
    was_enabled = tr.enabled
    old_capacity = tr.capacity
    if capacity is not None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        tr.capacity = int(capacity)
    if reset_first:
        tr.reset()
    tr.enable()
    try:
        yield tr
    finally:
        tr.enabled = was_enabled
        tr.capacity = old_capacity
