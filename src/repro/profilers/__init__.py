"""Traffic profiling for the PROF/HPROF load-balance approaches."""

from .traffic import TrafficProfile, node_rate_series

__all__ = ["TrafficProfile", "node_rate_series"]
