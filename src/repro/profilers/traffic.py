"""Traffic profiling (the PROF approaches' input).

"Typically profiling involves an initial simulation experiment using a
naive initial partition and traffic monitoring. The simulation yields
detailed traffic information, and improves subsequent network
partitions." A :class:`TrafficProfile` captures exactly that: per-node
simulation-event counts (the load signal) and per-link packet/byte
volumes (the cut-cost signal), plus binned per-node event-rate series
(Figure 3's "load variation over the lifetime of simulation").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TrafficProfile", "node_rate_series"]


@dataclass(frozen=True)
class TrafficProfile:
    """Measured traffic of a (profiling) simulation run."""

    #: packets handled per node (one kernel event per packet-hop)
    node_events: np.ndarray
    #: bytes carried per link (both directions)
    link_bytes: np.ndarray
    #: packets carried per link
    link_packets: np.ndarray
    #: profiled simulated duration (seconds)
    duration_s: float
    #: optional binned per-node event counts ``[bins, num_nodes]``
    #: (Figure 3's load-variation series; filled by the obs bridge)
    node_rate_bins: np.ndarray | None = None
    #: bin width of ``node_rate_bins`` in simulated seconds (0 when absent)
    rate_bin_s: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("profile duration must be positive")
        for name in ("node_events", "link_bytes", "link_packets"):
            arr = np.asarray(getattr(self, name))
            if arr.ndim != 1:
                raise ValueError(
                    f"{name} must be a 1-D per-{'node' if name == 'node_events' else 'link'} "
                    f"array, got shape {arr.shape}"
                )
            if np.any(arr < 0):
                raise ValueError(f"{name} must be non-negative")
        if len(self.link_bytes) != len(self.link_packets):
            raise ValueError(
                f"link_bytes ({len(self.link_bytes)} links) and link_packets "
                f"({len(self.link_packets)} links) describe different link sets"
            )
        if self.node_rate_bins is not None:
            bins = np.asarray(self.node_rate_bins)
            if bins.ndim != 2 or bins.shape[1] != len(self.node_events):
                raise ValueError(
                    f"node_rate_bins must have shape [bins, {len(self.node_events)}], "
                    f"got {bins.shape}"
                )
            if self.rate_bin_s <= 0:
                raise ValueError("rate_bin_s must be positive when node_rate_bins is given")

    @property
    def num_nodes(self) -> int:
        """Number of nodes the profile describes."""
        return len(self.node_events)

    @property
    def num_links(self) -> int:
        """Number of links the profile describes."""
        return len(self.link_bytes)

    def validate_topology(self, num_nodes: int, num_links: int) -> None:
        """Cross-check the profile's shape against a topology's.

        A profile recorded on one network silently mis-weights another:
        raises ``ValueError`` naming the mismatched dimension instead of
        letting the weight builders index out of bounds (or worse, *not*
        out of bounds on a differently-sized network).
        """
        if self.num_nodes != num_nodes:
            raise ValueError(
                f"profile covers {self.num_nodes} nodes but the topology has "
                f"{num_nodes}; it was measured on a different network"
            )
        if self.num_links != num_links:
            raise ValueError(
                f"profile covers {self.num_links} links but the topology has "
                f"{num_links}; it was measured on a different network"
            )

    @classmethod
    def from_simulation(cls, sim, duration_s: float) -> "TrafficProfile":
        """Snapshot the counters of a :class:`NetworkSimulator` run."""
        return cls(
            node_events=np.asarray(sim.node_packets, dtype=np.float64).copy(),
            link_bytes=sim.link_bytes(),
            link_packets=np.asarray(sim.link_packets(), dtype=np.float64),
            duration_s=float(duration_s),
        )

    @property
    def total_events(self) -> float:
        """Total profiled kernel events across all nodes."""
        return float(self.node_events.sum())

    def node_event_rates(self) -> np.ndarray:
        """Events/second per node over the profiled window."""
        return self.node_events / self.duration_s

    def scaled(self, factor: float) -> "TrafficProfile":
        """A profile extrapolated to ``factor``x the traffic volume
        (used to estimate a long run from a short profiling run)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return TrafficProfile(
            node_events=self.node_events * factor,
            link_bytes=self.link_bytes * factor,
            link_packets=self.link_packets * factor,
            duration_s=self.duration_s,
            node_rate_bins=(
                None if self.node_rate_bins is None else self.node_rate_bins * factor
            ),
            rate_bin_s=self.rate_bin_s,
        )


def node_rate_series(
    times: np.ndarray,
    nodes: np.ndarray,
    groups: np.ndarray,
    num_groups: int,
    bin_s: float,
    end_time: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Binned event-rate time series per node group (Figure 3).

    ``groups[node]`` assigns each node to a series (e.g. an LP of a
    partition); returns ``(bin_start_times, rates[bins, num_groups])`` in
    events/second.
    """
    if bin_s <= 0 or end_time <= 0:
        raise ValueError("bin_s and end_time must be positive")
    times = np.asarray(times, dtype=np.float64)
    nodes = np.asarray(nodes, dtype=np.int64)
    groups = np.asarray(groups, dtype=np.int64)
    num_bins = int(np.ceil(end_time / bin_s - 1e-12))
    counts = np.zeros((num_bins, num_groups), dtype=np.float64)
    keep = (times < end_time) & (nodes >= 0)
    if keep.any():
        t, n = times[keep], nodes[keep]
        b = np.minimum((t / bin_s).astype(np.int64), num_bins - 1)
        np.add.at(counts, (b, groups[n]), 1.0)
    starts = np.arange(num_bins) * bin_s
    return starts, counts / bin_s
