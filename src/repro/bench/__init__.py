"""The committed benchmark trajectory: ``python -m repro bench``.

Runs the micro-benchmarks (queue ops, hop throughput — each against the
frozen pre-PR replica in :mod:`repro.bench.baseline`) and the Figure-6
macro scenario, writes the results as ``BENCH_<date>.json`` at the repo
root, and compares them against the most recent previous ``BENCH_*.json``
with a configurable regression threshold. Committing the file each time
the hot path changes turns performance into a reviewed artifact with
history, exactly like the regression fingerprints do for correctness.

Document schema (``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "date": "YYYY-MM-DD",
      "quick": false,             # --quick runs a reduced workload
      "seed": 0,
      "suite": "all",             # hotpath | parallel | all
      "results": {                # flat metric -> float map
        "queue.legacy_ops_s": ..., "queue.heap_ops_s": ...,
        "queue.calendar_ops_s": ..., "queue.adaptive_ops_s": ...,
        "hotpath.legacy_packets_s": ..., "hotpath.packets_s": ...,
        "macro.fig6_events": ..., "macro.fig6_events_s": ...,
        "macro.fig6_wall_s": ...,
        "parallel.ref_wall_s": ..., "parallel.mp_wall_s": ...,
        "parallel.predicted_wall_s": ..., "parallel.mp_events_s": ...,
        "parallel.mail_bytes": ..., "parallel.run_events": ...
      },
      "speedups": {               # new path over the pre-PR baseline
        "queue_ops": ...,         # tuple-entry heap vs the legacy heap
        "queue_ops_adaptive": ..., # incl. the density-policy wrapper
        "hop_throughput": ...,
        "mp_measured": ...,       # multi-process wall vs 1-process wall
        "mp_predicted": ...       # the cost model's Tseq/Tpar, calibrated
      },
      "comparison": null | {      # vs the previous committed file
        "previous": "BENCH_....json", "threshold": 0.8,
        "regressions": [{"metric", "previous", "current", "ratio"}],
        "ok": true
      }
    }

Metrics ending in ``wall_s`` are lower-is-better; every other metric is
a rate (higher is better). A metric regresses when its better-direction
ratio ``current/previous`` (inverted for wall clocks) falls below the
threshold. ``quick`` documents are never used as comparison baselines
for full runs (and vice versa) — the workloads differ.
"""

from __future__ import annotations

import datetime
import json
from pathlib import Path

from .macro import bench_fig6
from .micro import bench_hop_throughput, bench_queue_ops
from .parallel import bench_parallel

__all__ = [
    "SCHEMA",
    "DEFAULT_THRESHOLD",
    "bench_parallel",
    "run_bench",
    "compare_bench",
    "find_previous",
    "write_bench",
    "format_bench",
]

#: Schema tag written into (and required of) every benchmark document.
SCHEMA = "repro-bench/1"
#: Default better-direction ratio below which a metric is a regression.
DEFAULT_THRESHOLD = 0.8

#: Queue backends timed by the ops benchmark (legacy = pre-PR replica).
_QUEUE_KINDS = ("legacy", "heap", "calendar", "adaptive")


def run_bench(quick: bool = False, seed: int = 0, suite: str = "all") -> dict:
    """Run the requested suite; returns the document (``comparison`` unset).

    ``quick`` shrinks each workload by an order of magnitude for CI
    smoke coverage — the resulting numbers are noisy and only compared
    against other quick runs. ``suite`` selects ``hotpath`` (queue +
    packet micro/macro benchmarks), ``parallel`` (executed multi-process
    speedup vs the cost model), or ``all``.
    """
    if suite not in ("hotpath", "parallel", "all"):
        raise ValueError(f"unknown bench suite: {suite!r}")
    results: dict[str, float] = {}
    speedups: dict[str, float] = {}
    if suite in ("hotpath", "all"):
        if quick:
            q_prefill, q_iter = 1024, 6_000
            hop_packets, chain_nodes = 300, 17
            macro_duration: float | None = 0.5
        else:
            q_prefill, q_iter = 4096, 60_000
            hop_packets, chain_nodes = 2_500, 33
            macro_duration = None  # the scale's profiling duration
        for kind in _QUEUE_KINDS:
            r = bench_queue_ops(kind, prefill=q_prefill, iterations=q_iter, seed=seed)
            results[f"queue.{kind}_ops_s"] = r["ops_s"]
        if not quick:
            # Document the heap/calendar crossover (the AdaptiveQueue promote
            # threshold) at a paper-scale backlog.
            for kind in ("heap", "calendar"):
                r = bench_queue_ops(kind, prefill=262_144, iterations=20_000, seed=seed)
                results[f"queue.{kind}_large_ops_s"] = r["ops_s"]
        for path in ("legacy", "new"):
            r = bench_hop_throughput(
                path, packets=hop_packets, chain_nodes=chain_nodes, seed=seed
            )
            key = "hotpath.legacy_packets_s" if path == "legacy" else "hotpath.packets_s"
            results[key] = r["packets_s"]
        macro = bench_fig6(scale_name="small", seed=seed, duration_s=macro_duration)
        results["macro.fig6_events"] = float(macro["events"])
        results["macro.fig6_events_s"] = macro["events_s"]
        results["macro.fig6_wall_s"] = macro["wall_s"]
        speedups.update(
            {
                # queue_ops is the queue-for-queue comparison: the tuple-entry
                # heap this PR introduced against the pre-PR dataclass-event
                # heap it replaced. queue_ops_adaptive adds the density-policy
                # wrapper the kernel runs by default (a ~5% bookkeeping tax in
                # heap mode, repaid only at backlogs past the promote point).
                "queue_ops": results["queue.heap_ops_s"]
                / results["queue.legacy_ops_s"],
                "queue_ops_adaptive": results["queue.adaptive_ops_s"]
                / results["queue.legacy_ops_s"],
                "hop_throughput": results["hotpath.packets_s"]
                / results["hotpath.legacy_packets_s"],
            }
        )
    if suite in ("parallel", "all"):
        par = bench_parallel(quick=quick, seed=seed)
        results.update(par["results"])
        speedups.update(par["speedups"])
    return {
        "schema": SCHEMA,
        "date": datetime.date.today().isoformat(),
        "quick": quick,
        "seed": seed,
        "suite": suite,
        "results": results,
        "speedups": speedups,
        "comparison": None,
    }


def _better_ratio(metric: str, previous: float, current: float) -> float:
    """Ratio in the metric's better direction (>1 means improvement)."""
    if previous <= 0.0 or current <= 0.0:
        return 1.0
    if metric.endswith("wall_s"):
        return previous / current
    return current / previous


def compare_bench(doc: dict, prev_doc: dict, threshold: float) -> dict:
    """Compare ``doc`` against a previous document; returns ``comparison``.

    Only metrics present in both documents are compared; counters (the
    raw ``macro.fig6_events``) are skipped — the event count is workload
    determinism, checked by the fingerprint tests, not a performance
    signal.
    """
    regressions = []
    for metric, current in doc["results"].items():
        if metric.endswith("_events"):
            continue
        previous = prev_doc.get("results", {}).get(metric)
        if previous is None:
            continue
        ratio = _better_ratio(metric, previous, current)
        if ratio < threshold:
            regressions.append(
                {
                    "metric": metric,
                    "previous": previous,
                    "current": current,
                    "ratio": ratio,
                }
            )
    return {
        "previous": prev_doc.get("_filename", "<unknown>"),
        "threshold": threshold,
        "regressions": regressions,
        "ok": not regressions,
    }


def find_previous(
    out_dir: str | Path, exclude: str | None = None, quick: bool = False
) -> dict | None:
    """Load the latest comparable ``BENCH_*.json`` in ``out_dir``.

    "Latest" is by filename (the date-stamped name sorts correctly);
    ``exclude`` skips the file about to be (re)written. Documents whose
    ``quick`` flag differs from the requested run are not comparable.
    """
    out_dir = Path(out_dir)
    candidates = sorted(
        p for p in out_dir.glob("BENCH_*.json") if p.name != exclude
    )
    for path in reversed(candidates):
        try:
            with open(path) as f:
                prev = json.load(f)
        except (OSError, json.JSONDecodeError):
            continue
        if prev.get("schema") != SCHEMA or bool(prev.get("quick")) != quick:
            continue
        prev["_filename"] = path.name
        return prev
    return None


def write_bench(
    doc: dict,
    out_dir: str | Path = ".",
    threshold: float = DEFAULT_THRESHOLD,
) -> Path:
    """Compare against the previous trajectory point and write the file.

    Fills ``doc["comparison"]`` in place (``None`` when no comparable
    previous document exists) and writes ``BENCH_<date>.json`` into
    ``out_dir``, overwriting a same-day file — reruns supersede.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    name = f"BENCH_{doc['date']}.json"
    prev = find_previous(out_dir, exclude=name, quick=bool(doc.get("quick")))
    doc["comparison"] = (
        compare_bench(doc, prev, threshold) if prev is not None else None
    )
    path = out_dir / name
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def format_bench(doc: dict) -> str:
    """Human-readable table of a benchmark document."""
    lines = [
        f"repro bench ({'quick' if doc['quick'] else 'full'}, "
        f"seed {doc['seed']}, {doc['date']})",
        f"{'metric':<28}{'value':>16}",
    ]
    for metric in sorted(doc["results"]):
        value = doc["results"][metric]
        # Sub-second wall clocks need decimals; rates and counters don't.
        rendered = f"{value:>16,.3f}" if abs(value) < 1000 else f"{value:>16,.0f}"
        lines.append(f"{metric:<28}{rendered}")
    sp = doc["speedups"]
    if "queue_ops" in sp:
        lines.append(
            f"speedup vs pre-PR baseline: queue ops {sp['queue_ops']:.2f}x "
            f"(adaptive {sp.get('queue_ops_adaptive', sp['queue_ops']):.2f}x), "
            f"hop throughput {sp['hop_throughput']:.2f}x"
        )
    if "mp_measured" in sp:
        lines.append(
            f"multi-process speedup: measured {sp['mp_measured']:.2f}x, "
            f"cost-model predicted {sp['mp_predicted']:.2f}x"
        )
    cmp = doc.get("comparison")
    if cmp is None:
        lines.append("no previous comparable BENCH file — baseline run")
    elif cmp["ok"]:
        lines.append(
            f"vs {cmp['previous']}: OK (no metric below "
            f"{cmp['threshold']:.2f}x of previous)"
        )
    else:
        lines.append(f"vs {cmp['previous']}: REGRESSIONS")
        for r in cmp["regressions"]:
            lines.append(
                f"  {r['metric']}: {r['previous']:,.0f} -> {r['current']:,.0f} "
                f"({r['ratio']:.2f}x, threshold {cmp['threshold']:.2f}x)"
            )
    return "\n".join(lines)
