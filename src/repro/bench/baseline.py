"""Frozen replicas of the pre-overhaul event/packet hot path.

The benchmark harness (:mod:`repro.bench`) reports speedups *relative to
the code this PR replaced*: a ``(time, seq)``-ordered binary heap of
``order=True`` dataclass events (every sift comparison a Python-level
``__lt__`` call), one capturing lambda allocated per packet hop, and a
frozen-dataclass per-hop transmit result. Those implementations are
preserved here verbatim-in-structure so the "pre-PR heap/closure
baseline" in every ``BENCH_*.json`` is measured, not remembered — the
legacy number is re-timed on the same host, same interpreter, same
workload as the new path.

Nothing in this module is used by the simulator itself; it exists only
to keep the committed benchmark trajectory honest.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..netsim.link import RedParams
from ..netsim.packet import Packet
from ..netsim.simulator import LOOPBACK_LATENCY_S, NetworkSimulator
from ..routing.fib import ForwardingPlane
from ..topology.models import Network

__all__ = [
    "LegacyEvent",
    "LegacyEventQueue",
    "LegacyKernel",
    "LegacyTransmitResult",
    "LegacyLinkRuntime",
    "LegacyHopSim",
]

_seq = itertools.count()


@dataclass(order=True)
class LegacyEvent:
    """The pre-overhaul event: an ``order=True`` dataclass.

    Every heap comparison builds two ``(time, seq)`` tuples and runs a
    generated Python ``__lt__`` — the cost the tuple-entry heap removed.
    """

    time: float
    seq: int = field(compare=True)
    fn: Callable[[], Any] = field(compare=False)
    node: int = field(compare=False, default=-1)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Lazily cancel; the queue discards the event on pop."""
        self.cancelled = True


class LegacyEventQueue:
    """The pre-overhaul binary heap: events compared via Python ``__lt__``."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[LegacyEvent] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, fn: Callable[[], Any], node: int = -1) -> LegacyEvent:
        """Create and enqueue an event; returns it (for cancellation)."""
        # Deliberately preserved pre-overhaul idiom: this queue exists as
        # the benchmark comparison baseline and will never run multi-core.
        ev = LegacyEvent(time=time, seq=next(_seq), fn=fn, node=node)  # simlint: disable=SIM201
        heapq.heappush(self._heap, ev)
        return ev

    def peek_time(self) -> float | None:
        """Timestamp of the earliest live event (None when empty)."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def pop(self) -> LegacyEvent | None:
        """Remove and return the earliest live event (None when empty)."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                return ev
        return None


class LegacyKernel:
    """The pre-overhaul sequential kernel: zero-argument closure dispatch."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self.queue = LegacyEventQueue()
        self.events_executed: int = 0

    @property
    def current_time(self) -> float:
        """Simulated time of the executing (or last executed) event."""
        return self.now

    def schedule_at(
        self, time: float, fn: Callable[[], Any], node: int = -1
    ) -> LegacyEvent:
        """Schedule a closure at absolute simulated ``time`` at ``node``."""
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        return self.queue.push(time, fn, node)

    def run(self, until: float | None = None) -> int:
        """Execute events in timestamp order (the pre-overhaul loop)."""
        executed = 0
        while True:
            t = self.queue.peek_time()
            if t is None or (until is not None and t >= until):
                break
            ev = self.queue.pop()
            assert ev is not None
            self.now = ev.time
            ev.fn()
            executed += 1
        self.events_executed += executed
        return executed


@dataclass(frozen=True)
class LegacyTransmitResult:
    """The pre-overhaul per-hop result: a frozen dataclass.

    Frozen dataclasses pay ``object.__setattr__`` per field at
    construction — one per packet hop before the NamedTuple conversion.
    """

    accepted: bool
    start_time: float = 0.0
    arrival_time: float = 0.0
    backlog_bytes: float = 0.0


class LegacyLinkRuntime:
    """Pre-overhaul transmitter: old admission, old RED, frozen result.

    Carries the full pre-overhaul ``transmit`` control flow — failure
    check, backlog-ahead-only admission, the ``_early_drop`` call with
    the discontinuous RED profile — so the hop benchmark charges the
    legacy path every cost the real pre-overhaul link paid, no more.
    """

    __slots__ = (
        "link",
        "discipline",
        "red",
        "busy_until",
        "bytes_carried",
        "packets_carried",
        "packets_dropped",
        "failed",
        "_rng",
    )

    def __init__(self, link, discipline: str = "droptail") -> None:
        self.link = link
        self.discipline = discipline
        self.red = RedParams()
        self.busy_until = [0.0, 0.0]
        self.bytes_carried = [0, 0]
        self.packets_carried = [0, 0]
        self.packets_dropped = [0, 0]
        self.failed = False
        # Distinct seed base from the live LinkRuntime: the legacy and
        # current transmitters must not draw from aliased bit-generator
        # streams when both simulate the same link_id side by side.
        self._rng = np.random.default_rng(0xB5297A4D ^ link.link_id)

    def direction(self, from_node: int) -> int:
        """Direction index for traffic leaving ``from_node`` (0 or 1)."""
        if from_node == self.link.u:
            return 0
        if from_node == self.link.v:
            return 1
        raise ValueError(f"node {from_node} not on link {self.link.link_id}")

    def _early_drop(self, backlog_bytes: float) -> bool:
        """The pre-overhaul RED decision (discontinuous at ``max_th``)."""
        if self.discipline != "red":
            return False
        min_th = self.red.min_th_fraction * self.link.queue_bytes
        max_th = self.red.max_th_fraction * self.link.queue_bytes
        if backlog_bytes <= min_th:
            return False
        if backlog_bytes >= max_th:
            return bool(self._rng.random() < self.red.max_p * 2)
        p = self.red.max_p * (backlog_bytes - min_th) / (max_th - min_th)
        return bool(self._rng.random() < p)

    def transmit(self, from_node: int, packet: Packet, now: float) -> LegacyTransmitResult:
        """The pre-overhaul transmit: backlog-ahead-only admission."""
        d = self.direction(from_node)
        if self.failed:
            self.packets_dropped[d] += 1
            return LegacyTransmitResult(accepted=False)
        start = max(now, self.busy_until[d])
        backlog_bytes = (start - now) * self.link.bandwidth_bps / 8.0
        if backlog_bytes > self.link.queue_bytes or self._early_drop(backlog_bytes):
            self.packets_dropped[d] += 1
            return LegacyTransmitResult(accepted=False, backlog_bytes=backlog_bytes)
        tx_time = packet.size_bytes * 8.0 / self.link.bandwidth_bps
        finish = start + tx_time
        self.busy_until[d] = finish
        self.bytes_carried[d] += packet.size_bytes
        self.packets_carried[d] += 1
        return LegacyTransmitResult(
            accepted=True,
            start_time=start,
            arrival_time=finish + self.link.latency_s,
            backlog_bytes=backlog_bytes,
        )


class LegacyHopSim(NetworkSimulator):
    """The real simulator with the pre-overhaul hot path grafted back in.

    A :class:`NetworkSimulator` subclass so every piece of per-hop
    bookkeeping — traffic counters, observability guards, tracer check,
    transport demux on delivery — is *identical* to the current
    simulator. Only the three things this PR changed are overridden:
    per-hop scheduling allocates a capturing lambda, links are the
    pre-overhaul :class:`LegacyLinkRuntime` (frozen-dataclass results),
    and the event loop is the legacy dataclass-event heap kernel. The
    measured difference to the real simulator is therefore the
    event/queue/dispatch overhaul and nothing else.
    """

    def __init__(self, net: Network, fib: ForwardingPlane, kernel: LegacyKernel) -> None:
        super().__init__(net, fib, kernel)  # type: ignore[arg-type]
        self.links = [LegacyLinkRuntime(l) for l in net.links]

    def inject(self, packet: Packet) -> None:
        """Enter a packet at its source node (pre-overhaul closure form)."""
        packet.created_at = self.now
        self.counters.packets_sent += 1
        self._obs_sent.inc()
        if packet.src == packet.dst:
            self.sched.schedule_at(
                self.now + LOOPBACK_LATENCY_S,
                # Deliberate legacy closure idiom (benchmark baseline only).
                lambda p=packet: self._handle_at(p.dst, p),  # simlint: disable=SIM203
                node=packet.dst,
            )
            return
        self._handle_at(packet.src, packet)

    def _handle_at(self, node: int, packet: Packet) -> None:
        """The pre-overhaul forwarding step, verbatim (lambda per hop)."""
        self.node_packets[node] += 1
        if self._obs.enabled:
            self._obs_node_events.inc(node)
            self._obs_rate_bins.observe(self.now, node)
        if node == packet.dst:
            self._deliver(node, packet)
            return
        if packet.ttl <= 0:
            self.counters.packets_dropped_ttl += 1
            self._obs_dropped_ttl.inc()
            return
        next_node = self.fib.next_hop(node, packet.dst)
        if next_node is None:
            self.counters.packets_unroutable += 1
            self._obs_unroutable.inc()
            return
        link = self.net.link_between(node, next_node)
        assert link is not None, "forwarding plane returned a non-adjacent hop"
        runtime = self.links[link.link_id]
        depart = self.now + (self.hop_processing_s if node != packet.src else 0.0)
        result = runtime.transmit(node, packet, depart)
        if self._obs.enabled:
            self._obs_queue_hwm.observe(link.link_id, result.backlog_bytes)
        if not result.accepted:
            self.counters.packets_dropped_queue += 1
            if self._obs.enabled:
                self._obs_dropped_queue.inc()
                self._obs_link_drops.inc(link.link_id)
            return
        packet.ttl -= 1
        packet.hops += 1
        if self._obs.enabled:
            self._obs_link_packets.inc(link.link_id)
            self._obs_link_bytes.inc(link.link_id, packet.size_bytes)
        if self.record_transmissions:
            self.tx_times.append(result.start_time)
            self.tx_from.append(node)
            self.tx_to.append(next_node)
        if self._trace.enabled:
            self._trace.tx(result.start_time, node, next_node)
        # The pre-overhaul closure allocation: one capturing lambda per hop.
        self.sched.schedule_at(
            result.arrival_time,
            lambda n=next_node, p=packet: self._handle_at(n, p),  # simlint: disable=SIM203
            node=next_node,
        )
