"""Executed multi-process speedup benchmark (``--suite parallel``).

The cost model (:func:`repro.engine.costmodel.predict_wallclock`) is the
paper's planning instrument; this bench is its reality check. The same
seeded UDP chain workload runs once on the single-process
:class:`~repro.engine.ConservativeEngine` (the measured sequential
baseline) and once across real worker processes on the
:class:`~repro.engine.ParallelConservativeEngine`, and the document
commits the *measured* multi-process wall-clock next to the model's
prediction over the identical window counters — calibrated to this
machine's event rate, so the sequential term matches by construction
and the gap isolates barrier + serialization cost the model does not
see. On a single-core container the measured speedup is honestly <= 1;
the committed trajectory tracks both numbers, not just the flattering
one.
"""

from __future__ import annotations

import statistics

import numpy as np

from ..engine.parallel import ParallelConservativeEngine
from ..engine.recovery import RecoveryConfig
from ..experiments.parallel import calibrated_cluster, predict_from_windows
from ..experiments.shard import run_reference, udp_spec
from ..partition.rebalance import RebalanceConfig
from ..obs.registry import get_registry
from ..obs.timers import Stopwatch
from ..obs.trace import get_tracer
from ..topology.models import Network, NodeKind

__all__ = ["bench_parallel"]


def _chain_network(num_nodes: int, latency_s: float) -> Network:
    net = Network()
    for _ in range(num_nodes):
        net.add_node(NodeKind.ROUTER)
    for u in range(num_nodes - 1):
        net.add_link(u, u + 1, 1e9, latency_s, 1 << 26)
    return net


def bench_parallel(
    quick: bool = False,
    seed: int = 0,
    procs: int = 2,
    num_lps: int = 4,
) -> dict:
    """Measured N-process speedup vs the cost-model prediction.

    Returns ``{"results": {...}, "speedups": {...}}`` in the bench
    document's flat-metric shape. Every hop latency equals the lookahead,
    so the window structure is the conservative engine's worst honest
    case: each packet crosses a barrier per hop.
    """
    if quick:
        num_nodes, duration_s, packets = 24, 0.05, 300
    else:
        num_nodes, duration_s, packets = 48, 0.2, 1500
    latency_s = 1e-3
    assignment = np.repeat(
        np.arange(num_lps, dtype=np.int64), num_nodes // num_lps
    )
    net = _chain_network(num_nodes, latency_s)
    spec = udp_spec(
        net, duration_s, packets=packets, seed=seed, record_deliveries=False
    )

    watch = Stopwatch()
    ref_engine, _ = run_reference(
        spec, assignment, num_lps, latency_s, duration_s
    )
    ref_wall_s = watch.elapsed()

    engine = ParallelConservativeEngine(
        assignment, num_lps, latency_s, procs=procs, start_method="fork"
    )
    result = engine.run_scenario(spec, until=duration_s)

    # Observability overhead: the same workload once more with the
    # registry and tracer live, so the trajectory tracks what turning
    # the distributed obs layer on costs in wall-clock and whether the
    # zero-mail-bytes invariant holds (the delta must stay exactly 0 —
    # snapshots ride the control plane, never barrier mail).
    reg, tracer = get_registry(), get_tracer()
    reg_was, tracer_was = reg.enabled, tracer.enabled
    reg.clear()
    tracer.reset()
    reg.enabled = True
    tracer.enabled = True
    try:
        obs_engine = ParallelConservativeEngine(
            assignment, num_lps, latency_s, procs=procs, start_method="fork"
        )
        obs_result = obs_engine.run_scenario(spec, until=duration_s)
    finally:
        reg.enabled = reg_was
        tracer.enabled = tracer_was
        reg.clear()
        tracer.reset()

    # Fault-tolerance overhead: the same workload once more with barrier
    # checkpointing on (no faults injected), so the trajectory tracks
    # what the capture/encode/commit cycle costs in wall-clock and in
    # control-plane checkpoint bytes — and holds the zero-delta mail
    # invariant (checkpoints ride the control plane, never barrier
    # mail, so the mail-byte delta must stay exactly 0).
    rec_engine = ParallelConservativeEngine(
        assignment, num_lps, latency_s, procs=procs, start_method="fork",
        recovery=RecoveryConfig(checkpoint_every_n_windows=8),
    )
    rec_result = rec_engine.run_scenario(spec, until=duration_s)

    # Online re-balancing: a deliberately bad static split runs with and
    # without the blame-driven re-balancer. The reversed assignment puts
    # the hot region (nodes 0-7, all on LP 3) and the elephant flow's
    # source (node 15, LP 2) on the same shard while the flow crosses
    # the static shard boundary (LP 2 -> LP 1); the correct single move
    # — LP 2 to shard 0 — both relieves the blamed shard and turns the
    # flow's mail into local mailbox traffic. Chained injection keeps
    # the mid-run migration payload O(in-flight). Walls are medians of
    # alternating paired reps (this box is noisy); mail and the move
    # list are deterministic.
    rb_nodes = 32
    rb_assignment = np.asarray(
        [3 - (i * 4 // rb_nodes) for i in range(rb_nodes)], dtype=np.int64
    )
    rb_packets, rb_duration = (8000, 0.15) if quick else (20000, 0.2)
    rb_spec = udp_spec(
        _chain_network(rb_nodes, latency_s),
        rb_duration,
        packets=rb_packets,
        seed=seed + 11,
        record_deliveries=False,
        hot_fraction=0.85,
        hot_span=8,
        flow_fraction=0.35,
        flow_src=15,
        flow_dst=16,
        chain_injects=True,
    )
    rb_cfg = RebalanceConfig(
        threshold=0.5,
        patience=2,
        cooldown=2,
        history=8,
        min_gain_fraction=0.05,
        max_migrations=1,
    )
    static_walls: list[float] = []
    rb_walls: list[float] = []
    static_mail = rb_mail = 0
    rb_migrations = 0
    for _ in range(3):
        s_run = ParallelConservativeEngine(
            rb_assignment, 4, latency_s, procs=2, start_method="fork"
        ).run_scenario(rb_spec, until=rb_duration)
        r_run = ParallelConservativeEngine(
            rb_assignment, 4, latency_s, procs=2, start_method="fork",
            rebalance=rb_cfg,
        ).run_scenario(rb_spec, until=rb_duration)
        static_walls.append(s_run.wall_s)
        rb_walls.append(r_run.wall_s)
        static_mail = s_run.total_mail_bytes
        rb_mail = r_run.total_mail_bytes
        rb_migrations = len(r_run.migrations)

    cluster = calibrated_cluster(procs, ref_wall_s, ref_engine.events_executed)
    predicted = predict_from_windows(
        result.window_stats, num_lps, cluster, shards=engine.shards
    )
    events = result.events_executed
    results = {
        "parallel.ref_wall_s": ref_wall_s,
        "parallel.mp_wall_s": result.wall_s,
        "parallel.predicted_wall_s": predicted.total_s,
        "parallel.mp_events_s": events / result.wall_s if result.wall_s else 0.0,
        "parallel.mail_bytes": float(result.total_mail_bytes),
        "parallel.run_events": float(events),
        "parallel.obs_wall_s": obs_result.wall_s,
        "parallel.obs_mail_delta_bytes": float(
            obs_result.total_mail_bytes - result.total_mail_bytes
        ),
        "parallel.obs_snapshot_shards": float(
            len(obs_result.registry_snapshots)
        ),
        "parallel.recovery.wall_s": rec_result.wall_s,
        "parallel.recovery.mail_delta_bytes": float(
            rec_result.total_mail_bytes - result.total_mail_bytes
        ),
        "parallel.recovery.checkpoints": float(
            rec_result.recovery["checkpoints_taken"]
        ),
        "parallel.recovery.checkpoint_bytes": float(
            rec_result.recovery["checkpoint_bytes"]
        ),
        "parallel.rebalance.static_wall_s": statistics.median(static_walls),
        "parallel.rebalance.wall_s": statistics.median(rb_walls),
        "parallel.rebalance.static_mail_bytes": float(static_mail),
        "parallel.rebalance.mail_bytes": float(rb_mail),
        "parallel.rebalance.migrations": float(rb_migrations),
    }
    speedups = {
        # measured: this machine, pipes and real processes; predicted:
        # the paper's window-max model with the calibrated event rate.
        "mp_measured": ref_wall_s / result.wall_s if result.wall_s else 0.0,
        "mp_predicted": (
            cluster.event_cost_s * ref_engine.events_executed / predicted.total_s
            if predicted.total_s
            else 0.0
        ),
        # disabled-obs wall over enabled-obs wall: 1.0 means free, lower
        # means the obs layer cost that fraction of throughput.
        "obs_overhead": (
            result.wall_s / obs_result.wall_s if obs_result.wall_s else 0.0
        ),
        # checkpointing-off wall over checkpointing-on wall: 1.0 means
        # the barrier checkpoint cycle is free, lower means it cost that
        # fraction of throughput.
        "recovery_overhead": (
            result.wall_s / rec_result.wall_s if rec_result.wall_s else 0.0
        ),
        # bad static split over the re-balanced run of the same
        # workload: > 1.0 means the mid-run migration paid for itself.
        "rebalance_gain": (
            statistics.median(static_walls) / statistics.median(rb_walls)
            if statistics.median(rb_walls)
            else 0.0
        ),
    }
    return {"results": results, "speedups": speedups, "procs": procs}
