"""Micro-benchmarks: pending-event-set ops and the per-hop packet path.

Two measurements, each run both on the overhauled hot path and on the
frozen pre-PR replica (:mod:`repro.bench.baseline`) so every
``BENCH_*.json`` carries a same-host speedup:

- **queue ops** — the classic *hold model* (Jones 1986): prefill the
  queue, then repeatedly pop the minimum and push it back a random
  increment later, which keeps the population constant and exercises the
  steady-state push/pop mix of a running simulation. Each backend is
  driven the way its engine run loop drives it: the pre-PR loop peeked
  (to test the ``until`` bound) and then popped, so the legacy replica
  pays both traversals; the overhauled loop does one ``pop_until``;
- **hop throughput** — a chain topology relay where every event is one
  packet hop, isolating exactly what the simulator's inner loop pays per
  packet: event creation, queue insertion, dispatch, link transmit.

All randomness is seeded and precomputed outside the timed region.
"""

from __future__ import annotations

import numpy as np

from ..engine.calqueue import make_queue
from ..engine.kernel import SimKernel
from ..netsim.packet import Packet, Protocol, new_flow_id
from ..netsim.simulator import NetworkSimulator
from ..obs.timers import Stopwatch
from ..routing.fib import ForwardingPlane
from ..topology.models import Network, NodeKind
from .baseline import LegacyEventQueue, LegacyHopSim, LegacyKernel

__all__ = ["bench_queue_ops", "bench_hop_throughput", "build_chain"]


def _noop() -> None:
    """Do-nothing event callback: the queue benchmark measures the queue."""


def bench_queue_ops(
    kind: str,
    *,
    prefill: int = 4096,
    iterations: int = 60_000,
    seed: int = 0,
    repeats: int = 3,
) -> dict:
    """Hold-model ops/s for one queue backend.

    ``kind`` is ``"legacy"`` (the pre-PR dataclass-event heap) or any
    :data:`repro.engine.calqueue.QUEUE_KINDS` entry. One iteration is
    the queue work per executed event as the owning engine performs it —
    legacy: peek (the run loop's bound test) + pop + push; overhauled:
    ``pop_until`` + push — reported as 2 ops (one arrival, one
    departure). The whole measurement runs ``repeats`` times on fresh
    queues and the fastest wall clock wins (the ``timeit`` estimator:
    noise from scheduling and GC only ever slows a run down).
    """
    rng = np.random.default_rng(seed)
    base_times = rng.uniform(0.0, 1.0, size=prefill).tolist()
    increments = rng.exponential(1e-3, size=iterations).tolist()
    inf = float("inf")
    best_wall_s = float("inf")
    for _ in range(repeats):
        if kind == "legacy":
            queue = LegacyEventQueue()
            for t in base_times:
                queue.push(t, _noop)
            sw = Stopwatch()
            for inc in increments:
                queue.peek_time()
                ev = queue.pop()
                queue.push(ev.time + inc, _noop)
        else:
            queue = make_queue(kind)
            for t in base_times:
                queue.push(t, _noop)
            sw = Stopwatch()
            for inc in increments:
                ev = queue.pop_until(inf)
                queue.push(ev.time + inc, _noop)
        best_wall_s = min(best_wall_s, max(sw.elapsed(), 1e-9))
    ops = 2 * iterations
    return {
        "kind": kind,
        "prefill": prefill,
        "ops": ops,
        "wall_s": best_wall_s,
        "ops_s": ops / best_wall_s,
    }


def build_chain(
    num_nodes: int = 33,
    bandwidth_bps: float = 1e9,
    latency_s: float = 1e-4,
    queue_bytes: int = 1 << 26,
) -> tuple[Network, ForwardingPlane]:
    """A single-AS chain of routers: node 0 — 1 — ... — ``num_nodes-1``.

    Links are fat and short so the hop benchmark never drops: the
    measurement is the per-hop event cost, not congestion behavior.
    """
    net = Network()
    for _ in range(num_nodes):
        net.add_node(NodeKind.ROUTER)
    for u in range(num_nodes - 1):
        net.add_link(u, u + 1, bandwidth_bps, latency_s, queue_bytes)
    return net, ForwardingPlane(net)


def bench_hop_throughput(
    path: str,
    *,
    packets: int = 2_500,
    chain_nodes: int = 33,
    seed: int = 0,
    repeats: int = 3,
) -> dict:
    """Packet hops per second relaying ``packets`` across a chain.

    ``path`` is ``"new"`` (the real :class:`NetworkSimulator` on the
    overhauled kernel) or ``"legacy"`` (the pre-PR closure/heap replica).
    Both relay the identical seeded injection schedule end to end; the
    chain is shorter than the packet TTL so every packet is delivered.
    Runs ``repeats`` fresh simulations and keeps the fastest wall clock
    (the ``timeit`` estimator — noise only ever slows a run down).
    """
    if chain_nodes - 1 >= 64:
        raise ValueError("chain must be shorter than the packet TTL (64)")
    if path not in ("legacy", "new"):
        raise ValueError(f"unknown hot path {path!r}; expected 'new' or 'legacy'")
    rng = np.random.default_rng(seed)
    starts = np.sort(rng.uniform(0.0, 0.05, size=packets)).tolist()
    dst = chain_nodes - 1

    def mk_packet() -> Packet:
        return Packet(
            src=0, dst=dst, size_bytes=1000, protocol=Protocol.UDP,
            flow_id=new_flow_id(),
        )

    best_wall_s = float("inf")
    hops = 0
    for _ in range(repeats):
        net, fib = build_chain(chain_nodes)
        if path == "legacy":
            kernel = LegacyKernel()
            sim = LegacyHopSim(net, fib, kernel)
            for t in starts:
                # The pre-PR idiom under test: a capturing lambda per event.
                kernel.schedule_at(t, lambda p=mk_packet(): sim.inject(p))
        else:
            kernel = SimKernel()
            sim = NetworkSimulator(net, fib, kernel)
            for t in starts:
                kernel.schedule_at(t, sim.inject, args=(mk_packet(),))

        sw = Stopwatch()
        kernel.run()
        best_wall_s = min(best_wall_s, max(sw.elapsed(), 1e-9))
        hops = int(sim.node_packets.sum())
        delivered = sim.counters.packets_delivered
        if delivered != packets:
            raise RuntimeError(
                f"hop benchmark lost packets ({delivered}/{packets} delivered); "
                f"the chain must be drop-free for the comparison to be fair"
            )
    return {
        "path": path,
        "packets": packets,
        "hops": hops,
        "wall_s": best_wall_s,
        "packets_s": hops / best_wall_s,
    }
