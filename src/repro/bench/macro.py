"""Macro benchmark: the Figure-6 scenario end to end on the real kernel.

The micro-benchmarks isolate the queue and the hop path; this one runs
the actual paper scenario — the single-AS network with the ScaLapack
workload plus HTTP background traffic — on the sequential kernel with
tracing and transmission recording off, so the number is the simulator's
honest events-per-second on a production-shaped event mix (TCP timers,
app think time, packet hops all interleaved).

Topology generation, routing convergence, and workload installation all
happen *outside* the timed region: only the event loop is measured.
"""

from __future__ import annotations

from ..engine.kernel import SimKernel
from ..experiments import build_network, install_workload
from ..experiments.config import SCALES
from ..netsim.simulator import NetworkSimulator
from ..obs.timers import Stopwatch
from ..online.agent import Agent

__all__ = ["bench_fig6"]


def bench_fig6(
    *,
    scale_name: str = "small",
    seed: int = 0,
    duration_s: float | None = None,
) -> dict:
    """Wall-clock the single-AS/ScaLapack scenario (paper Figure 6).

    ``duration_s`` defaults to the scale's profiling duration. Returns
    the executed event count, the timed wall seconds of the run loop,
    and the resulting events/s.
    """
    scale = SCALES[scale_name]
    duration = duration_s if duration_s is not None else scale.profile_duration_s
    net, fib = build_network("single-as", scale, seed=seed)
    kernel = SimKernel()
    sim = NetworkSimulator(net, fib, kernel)
    agent = Agent(sim)
    install_workload(sim, agent, net, "scalapack", scale, seed, duration_s=duration)
    sw = Stopwatch()
    kernel.run(until=duration)
    wall_s = max(sw.elapsed(), 1e-9)
    events = kernel.events_executed
    return {
        "scenario": "single-as/scalapack",
        "scale": scale_name,
        "duration_s": duration,
        "events": events,
        "wall_s": wall_s,
        "events_s": events / wall_s,
    }
