"""Conservative call graph over a :class:`~repro.analysis.symbols.ProgramIndex`.

Edges are *resolution attempts*, not proofs: the graph must over-approximate
so that LP reachability (and therefore the SIM2xx rules) errs toward
"reachable". Three resolution tiers, from precise to conservative:

1. **Precise** — ``self.method()`` resolves within the enclosing class;
   bare ``name()`` resolves to a same-module function or through the
   (relative-import aware) import map; ``ClassName()`` resolves to that
   class's ``__init__``.
2. **Typed receivers** — ``x.method()`` where ``x`` is a local assigned
   from a known constructor, or a parameter/attribute annotated with a
   known class name, resolves to that class's method.
3. **By-name fallback** — any remaining ``obj.method()`` links to *every*
   known method named ``method``. Sound for reachability, not for
   precision; the SIM2xx messages carry the originating chain so a
   human can audit the inferred path.

Besides call edges, the graph records **reference edges**: a function
name loaded outside call position (``sched.schedule(t, self._on_recv)``)
marks ``_on_recv`` as handed off by reference — the exact shape of
event-handler registration in the simulator, where the callee is invoked
later by the engine loop.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .symbols import FunctionInfo, ProgramIndex

__all__ = ["CallGraph", "build_call_graph"]

#: receiver names treated as "unknown object" — never resolve by name
#: through these (they are module aliases handled by dotted resolution)
_SKIP_BY_NAME = frozenset({"np", "numpy", "math", "os", "sys", "json", "re"})


@dataclass
class CallGraph:
    """Call and reference edges between qualified function names."""

    index: ProgramIndex
    #: caller qualname -> callee qualnames (direct calls)
    calls: dict[str, set[str]] = field(default_factory=dict)
    #: caller qualname -> qualnames it passes by reference (callbacks)
    refs: dict[str, set[str]] = field(default_factory=dict)

    def successors(self, qualname: str) -> set[str]:
        """Every function ``qualname`` may transfer control to."""
        return self.calls.get(qualname, set()) | self.refs.get(qualname, set())


class _FunctionScanner(ast.NodeVisitor):
    """Collect call/reference targets inside one function body."""

    def __init__(self, fi: FunctionInfo, index: ProgramIndex) -> None:
        self.fi = fi
        self.index = index
        self.calls: set[str] = set()
        self.refs: set[str] = set()
        #: local variable -> ClassInfo qualname, from ctor assignments
        #: and parameter annotations
        self.local_types: dict[str, str] = {}
        self._collect_local_types()

    # -- type seeding ---------------------------------------------------
    def _class_for_name(self, name: str | None) -> str | None:
        if not name:
            return None
        bare = name.split(".")[-1]
        candidates = self.index.classes_by_name.get(bare)
        if not candidates:
            return None
        # Prefer a same-module class, else the unique candidate.
        for c in candidates:
            if c.module == self.fi.module:
                return c.qualname
        return candidates[0].qualname if len(candidates) == 1 else None

    def _collect_local_types(self) -> None:
        node = self.fi.node
        for a in node.args.args + node.args.kwonlyargs + node.args.posonlyargs:
            cls = self._class_for_name(_annotation_head(a.annotation))
            if cls:
                self.local_types[a.arg] = cls
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and isinstance(sub.value, ast.Call)
            ):
                dotted = self.fi.ctx.dotted_name(sub.value.func)
                cls = self._class_for_name(dotted)
                if cls:
                    self.local_types[sub.targets[0].id] = cls
            elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                cls = self._class_for_name(_annotation_head(sub.annotation))
                if cls:
                    self.local_types[sub.target.id] = cls

    # -- resolution -----------------------------------------------------
    def _resolve_method(self, cls_qual: str, method: str) -> str | None:
        cls = self.index.classes.get(cls_qual)
        if cls and method in cls.methods:
            return cls.methods[method].qualname
        return None

    def _resolve_call_target(self, func: ast.AST) -> set[str]:
        out: set[str] = set()
        if isinstance(func, ast.Name):
            dotted = self.fi.ctx.dotted_name(func)
            # Same-module function.
            fi = self.index.functions.get(f"{self.fi.module}:{func.id}")
            if fi is not None and fi.cls is None:
                out.add(fi.qualname)
            # Imported function (absolute or relative).
            fq = self.index.imports.get(self.fi.module, {}).get(func.id) or dotted
            if fq and "." in fq:
                mod, _, name = fq.rpartition(".")
                target = self.index.functions.get(f"{mod}:{name}")
                if target is not None:
                    out.add(target.qualname)
            # Constructor -> __init__.
            cls = self._class_for_name(func.id)
            if cls:
                init = self._resolve_method(cls, "__init__")
                if init:
                    out.add(init)
            return out
        if isinstance(func, ast.Attribute):
            method = func.attr
            recv = func.value
            if isinstance(recv, ast.Name):
                if recv.id == "self" and self.fi.cls is not None:
                    hit = self._resolve_method(
                        f"{self.fi.module}:{self.fi.cls}", method
                    )
                    if hit:
                        return {hit}
                    # Inherited / dynamically-bound: fall through by name.
                elif recv.id == "cls" and self.fi.cls is not None:
                    hit = self._resolve_method(
                        f"{self.fi.module}:{self.fi.cls}", method
                    )
                    if hit:
                        return {hit}
                elif recv.id in self.local_types:
                    hit = self._resolve_method(self.local_types[recv.id], method)
                    if hit:
                        return {hit}
                elif recv.id in _SKIP_BY_NAME or recv.id in (
                    self.fi.ctx.module_aliases
                ):
                    # Module attribute call: try dotted function lookup only.
                    dotted = self.fi.ctx.dotted_name(func)
                    if dotted:
                        mod, _, name = dotted.rpartition(".")
                        target = self.index.functions.get(f"{mod}:{name}")
                        if target is not None:
                            return {target.qualname}
                    return set()
            # By-name fallback (covers self.attr.method() and every other
            # unresolved receiver): every known method with this name.
            # Dunders are excluded — ``super().__init__()`` would otherwise
            # link every class's constructor to every other's.
            if method.startswith("__") and method.endswith("__"):
                return set()
            return {
                m.qualname
                for m in self.index.by_name.get(method, [])
                if m.cls is not None
            }
        return out

    # -- visitors -------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self.calls |= self._resolve_call_target(node.func)
        for arg in node.args:
            self._maybe_ref(arg)
        for kw in node.keywords:
            self._maybe_ref(kw.value)
        self.generic_visit(node)

    def _maybe_ref(self, node: ast.AST) -> None:
        """Record a function passed by reference (callback registration).

        Only *resolvable* references become edges here (``self.method``,
        typed locals, same-module bare names) — unknown-receiver
        attributes are left to the reachability layer's handler-seed
        scan, which only fires on registration-shaped calls; turning
        every ``f(self.attr)`` into a by-name edge would drown the
        graph in false callbacks.
        """
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == "self" and self.fi.cls is not None:
                hit = self._resolve_method(
                    f"{self.fi.module}:{self.fi.cls}", node.attr
                )
                if hit:
                    self.refs.add(hit)
            elif node.value.id in self.local_types:
                hit = self._resolve_method(self.local_types[node.value.id], node.attr)
                if hit:
                    self.refs.add(hit)
        elif isinstance(node, ast.Name):
            fi = self.index.functions.get(f"{self.fi.module}:{node.id}")
            if fi is not None and fi.cls is None:
                self.refs.add(fi.qualname)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs are scanned as part of the enclosing function: a
        # closure's calls happen when the closure runs, and the closure
        # itself escapes through reference edges. Keep walking.
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef


def _annotation_head(ann: ast.AST | None) -> str | None:
    """The head identifier of an annotation (``Foo`` of ``Foo | None``)."""
    if ann is None:
        return None
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return ann.value.split("[", 1)[0].split("|", 1)[0].strip().split(".")[-1]
    if isinstance(ann, ast.Subscript):
        # Optional[Foo] / list[Foo] — not a receiver type we chase.
        return None
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return _annotation_head(ann.left) or _annotation_head(ann.right)
    return None


def build_call_graph(index: ProgramIndex) -> CallGraph:
    """Scan every indexed function and assemble the program call graph."""
    graph = CallGraph(index=index)
    for qual, fi in index.functions.items():
        scanner = _FunctionScanner(fi, index)
        for stmt in fi.node.body:
            scanner.visit(stmt)
        scanner.calls.discard(qual)
        scanner.refs.discard(qual)
        if scanner.calls:
            graph.calls[qual] = scanner.calls
        if scanner.refs:
            graph.refs[qual] = scanner.refs
    return graph
