"""LP-execution reachability: which functions run inside the event loop.

The SIM2xx rules only fire on code the logical-process execution path
can actually reach — a module-level cache mutated by an offline plotting
helper is harmless; the same cache touched from an event handler forks
state the moment LPs move to separate processes. Reachability is a BFS
over the :class:`~repro.analysis.callgraph.CallGraph` from two seed
sets:

- **entry points** — fnmatch patterns over qualified names naming the
  engine loops themselves (``SimKernel.run``, the conservative engine's
  dispatch, ``NetworkSimulator`` event injection, ``BgpEngine`` sweeps);
- **scheduled handlers** — any function passed into a
  registration-shaped call (``schedule``/``schedule_at``/``udp_bind``/
  ``register_tcp_endpoint``/``subscribe``, or an ``on_*``/``fn``/
  ``callback``/``handler`` keyword) anywhere in the program. The engine
  invokes these later from its loop, so they are entry points even when
  no static call edge reaches them.

The BFS keeps a parent map, so every reachable function can report the
*chain* that makes it reachable — SIM2xx messages embed it, turning
"trust me, it's reachable" into an auditable path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch

from .callgraph import CallGraph, build_call_graph
from .rules import ModuleContext
from .symbols import FunctionInfo, ProgramIndex

__all__ = [
    "DEFAULT_ENTRY_PATTERNS",
    "HANDLER_REGISTRARS",
    "HANDLER_KWARGS",
    "ProgramContext",
    "build_program_context",
]

#: fnmatch patterns over ``module:Class.method`` qualnames that anchor
#: the LP execution path. ``*:`` tolerates fixture trees whose module
#: names differ from the real package layout.
DEFAULT_ENTRY_PATTERNS: tuple[str, ...] = (
    "*:SimKernel.run",
    "*:ConservativeEngine.run",
    "*:ConservativeEngine.schedule_at",
    "*:NetworkSimulator.inject",
    "*:NetworkSimulator._handle_at",
    "*:BgpEngine.run",
    "*:BgpEngine._iterate_once",
)

#: callee bare names whose function-valued arguments are event handlers
HANDLER_REGISTRARS = frozenset(
    {
        "schedule",
        "schedule_at",
        "schedule_after",
        "udp_bind",
        "register_tcp_endpoint",
        "subscribe",
        "add_callback",
        "register_handler",
    }
)

#: keyword-argument names that mark a function value as a handler when
#: the call is itself a registrar (``fn=`` on arbitrary calls would seed
#: argparse's ``set_defaults(fn=cmd_x)`` and every CLI command with it)
HANDLER_KWARGS = frozenset({"fn", "callback", "handler"})


@dataclass
class ProgramContext:
    """Whole-program analysis results attached to every ModuleContext."""

    index: ProgramIndex
    graph: CallGraph
    #: qualnames reachable from LP entry points (seeds included)
    reachable: set[str] = field(default_factory=set)
    #: reachable qualname -> the qualname that first discovered it
    #: (seeds map to themselves)
    parent: dict[str, str] = field(default_factory=dict)
    #: the seed qualnames themselves, for reporting
    seeds: set[str] = field(default_factory=set)
    #: analyzer statistics (files, functions, edges, seeds, reachable)
    stats: dict[str, int] = field(default_factory=dict)

    def module_of(self, rel_path: str) -> str:
        """Dotted module name of a linted path (empty if not indexed)."""
        return self.index.module_of_path.get(rel_path, "")

    def enclosing_function(
        self, ctx: ModuleContext, node: ast.AST
    ) -> FunctionInfo | None:
        """The indexed function whose body contains ``node`` (by lines)."""
        module = self.module_of(ctx.rel_path)
        lineno = getattr(node, "lineno", 0)
        best: FunctionInfo | None = None
        for fi in self.index.functions.values():
            if fi.module != module:
                continue
            start = fi.node.lineno
            end = fi.node.end_lineno or start
            if start <= lineno <= end:
                # Innermost wins (methods of nested classes, nested defs).
                if best is None or fi.node.lineno > best.node.lineno:
                    best = fi
        return best

    def is_reachable(self, fi: FunctionInfo | None) -> bool:
        """True when the function lies on the LP execution path."""
        return fi is not None and fi.qualname in self.reachable

    def chain(self, qualname: str, limit: int = 6) -> str:
        """The entry→function path as ``a -> b -> c`` (for messages)."""
        hops: list[str] = []
        cur = qualname
        seen: set[str] = set()
        while cur in self.parent and cur not in seen:
            seen.add(cur)
            hops.append(cur.split(":", 1)[-1])
            nxt = self.parent[cur]
            if nxt == cur:
                break
            cur = nxt
        hops = hops[:limit]
        return " <- ".join(hops)


def _seed_entries(index: ProgramIndex, patterns: tuple[str, ...]) -> set[str]:
    return {
        qual
        for qual in index.functions
        if any(fnmatch(qual, pat) for pat in patterns)
    }


def _seed_handlers(index: ProgramIndex) -> set[str]:
    """Functions passed into registration-shaped calls anywhere."""
    seeds: set[str] = set()

    def note(value: ast.AST, fi: FunctionInfo) -> None:
        # See through functools.partial(fn, ...): the bound callable is
        # the handler (the sanctioned closure-free callback idiom).
        if isinstance(value, ast.Call) and value.args:
            head = (
                value.func.attr
                if isinstance(value.func, ast.Attribute)
                else value.func.id
                if isinstance(value.func, ast.Name)
                else None
            )
            if head == "partial":
                note(value.args[0], fi)
                return
        if isinstance(value, ast.Attribute):
            # self._on_x / obj._on_x: by-name over known methods.
            seeds.update(
                m.qualname
                for m in index.by_name.get(value.attr, [])
                if m.cls is not None
            )
        elif isinstance(value, ast.Name):
            hit = index.functions.get(f"{fi.module}:{value.id}")
            if hit is not None:
                seeds.add(hit.qualname)
            else:
                seeds.update(m.qualname for m in index.by_name.get(value.id, []))

    for fi in index.functions.values():
        for node in ast.walk(fi.node):
            # ``obj.on_change = self._handler`` — registration by
            # attribute assignment.
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Attribute) and tgt.attr.startswith("on_"):
                        note(node.value, fi)
                continue
            if not isinstance(node, ast.Call):
                continue
            callee = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else node.func.id
                if isinstance(node.func, ast.Name)
                else None
            )
            if callee in HANDLER_REGISTRARS:
                for arg in node.args:
                    note(arg, fi)
                for kw in node.keywords:
                    if kw.arg and (
                        kw.arg in HANDLER_KWARGS or kw.arg.startswith("on_")
                    ):
                        note(kw.value, fi)
            else:
                # ``on_*=`` keywords mark handlers on any call (delivery
                # callbacks of ``send()``-style APIs).
                for kw in node.keywords:
                    if kw.arg and kw.arg.startswith("on_"):
                        note(kw.value, fi)
    return seeds


def build_program_context(
    contexts: list[ModuleContext],
    entry_patterns: tuple[str, ...] = DEFAULT_ENTRY_PATTERNS,
) -> ProgramContext:
    """Index, link, and BFS: the full whole-program pass for one lint run."""
    index = ProgramIndex(contexts)
    graph = build_call_graph(index)
    seeds = _seed_entries(index, entry_patterns) | _seed_handlers(index)

    reachable: set[str] = set()
    parent: dict[str, str] = {}
    frontier = sorted(seeds)
    for s in frontier:
        parent[s] = s
    while frontier:
        nxt: list[str] = []
        for qual in frontier:
            if qual in reachable:
                continue
            reachable.add(qual)
            for succ in sorted(graph.successors(qual)):
                if succ not in parent:
                    parent[succ] = qual
                    nxt.append(succ)
        frontier = nxt

    prog = ProgramContext(
        index=index,
        graph=graph,
        reachable=reachable,
        parent=parent,
        seeds=seeds,
    )
    prog.stats = {
        "modules": len(index.modules),
        "functions": len(index.functions),
        "call_edges": sum(len(v) for v in graph.calls.values()),
        "ref_edges": sum(len(v) for v in graph.refs.values()),
        "seeds": len(seeds),
        "reachable": len(reachable),
    }
    return prog
