"""Simulation-semantics lint rules: time comparison, defaults, scheduling.

These catch API misuse patterns specific to the discrete-event substrate:
exact float comparison of simulated timestamps, shared mutable default
arguments (a classic cross-run state leak), and ``schedule()`` calls that
do not attribute the event to a node (breaking load profiling, which
charges unattributed events to LP 0).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .rules import ModuleContext, Severity, rule

__all__ = [
    "check_float_time_equality",
    "check_mutable_default",
    "check_schedule_node",
    "check_silent_except",
    "check_worker_registry_mutation",
]

_TIMESTAMP_NAMES = frozenset({"now", "time", "timestamp", "when", "deadline"})
_TIMESTAMP_SUFFIXES = ("_time", "_at", "_timestamp")


def _terminal_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _looks_like_timestamp(node: ast.AST) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    return name in _TIMESTAMP_NAMES or name.endswith(_TIMESTAMP_SUFFIXES)


@rule("SIM103", "float-eq-time", Severity.WARNING)
def check_float_time_equality(ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
    """Exact ``==``/``!=`` on simulated timestamps.

    Timestamps are floats accumulated through additions; exact equality
    is representation-dependent. Compare with an epsilon or restructure
    around event ordering.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            # Comparing against literal None/str is identity-ish, not a
            # float-precision hazard.
            if any(
                isinstance(x, ast.Constant) and not isinstance(x.value, (int, float))
                for x in (lhs, rhs)
            ):
                continue
            if _looks_like_timestamp(lhs) or _looks_like_timestamp(rhs):
                op_txt = "==" if isinstance(op, ast.Eq) else "!="
                yield node, (
                    f"exact float `{op_txt}` on a simulated timestamp; "
                    "use an epsilon comparison or event ordering"
                )
                break


@rule("SIM104", "mutable-default-arg", Severity.ERROR)
def check_mutable_default(ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
    """Mutable default argument (list/dict/set literal or constructor).

    Defaults are evaluated once at definition time, so a mutable default
    is shared across every call — and, here, across simulation runs,
    silently coupling experiments that should be independent.
    """
    mutable_ctors = {"list", "dict", "set"}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            bad = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in mutable_ctors
            )
            if bad:
                yield default, (
                    f"mutable default argument in `{node.name}()`; "
                    "default to None and construct inside the function"
                )


@rule(
    "SIM105",
    "schedule-missing-node",
    Severity.ERROR,
    scope=("engine/", "netsim/", "online/"),
)
def check_schedule_node(ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
    """``schedule()``/``schedule_at()`` without node attribution.

    The cost model charges events with ``node == -1`` to LP 0, skewing
    profiled load. Every scheduling call in engine/netsim/online code
    must pass ``node=`` (use ``node=-1`` deliberately only for
    engine-internal bookkeeping events).
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in (
            "schedule",
            "schedule_at",
        ):
            continue
        n_positional = len(node.args)
        has_node_kw = any(kw.arg == "node" for kw in node.keywords)
        has_splat = any(isinstance(a, ast.Starred) for a in node.args) or any(
            kw.arg is None for kw in node.keywords
        )
        if n_positional < 3 and not has_node_kw and not has_splat:
            yield node, (
                f"`{func.attr}()` call without an explicit `node=`; "
                "attribute the event to a simulated node for load profiling"
            )


_BROAD_EXCEPTIONS = frozenset(
    {"Exception", "BaseException", "builtins.Exception", "builtins.BaseException"}
)


def _is_silent_body(body: list[ast.stmt]) -> bool:
    """True when a handler body does nothing: only ``pass``/``...``/docstrings."""
    return all(
        isinstance(stmt, ast.Pass)
        or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
        for stmt in body
    )


@rule("SIM107", "silent-except", Severity.ERROR, scope=("repro/",))
def check_silent_except(ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
    """Bare ``except:`` or silently swallowed broad exceptions.

    A fault-injection run surfaces failures as exceptions on purpose —
    a handler that catches everything and does nothing turns an injected
    fault (or a real bug) into silent state corruption. Catch a specific
    type, or at minimum record the failure before continuing; suppress a
    deliberate sink with ``# simlint: disable=SIM107``.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield node, (
                "bare `except:` swallows every failure, including injected "
                "faults; catch a specific exception type"
            )
            continue
        types = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        names = {ctx.dotted_name(t) for t in types}
        if names & _BROAD_EXCEPTIONS and _is_silent_body(node.body):
            yield node, (
                "`except Exception` with an empty body hides failures; "
                "narrow the type or handle (at least record) the error"
            )


_REGISTRY_MUTATORS = frozenset({"enable", "disable", "reset", "clear"})
_REGISTRY_GETTERS = frozenset({"get_registry", "get_tracer"})


@rule(
    "SIM108",
    "worker-registry-mutation",
    Severity.ERROR,
    scope=("engine/parallel", "experiments/shard"),
)
def check_worker_registry_mutation(ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
    """Direct global registry/tracer mutation in worker-side code paths.

    Worker processes of the multi-process backend must set up
    observability through ``repro.obs.distributed
    .configure_worker_observability`` — it clears fork-inherited state
    and applies the controller's config stanza atomically. Ad-hoc
    ``get_registry().reset()`` / ``.enabled = ...`` in the shard/worker
    modules bypasses that layer, desynchronizing worker snapshots from
    the controller's merge expectations.
    """
    # Names bound from get_registry()/get_tracer() anywhere in the module
    # (coarse on purpose: shard/worker modules should not hold a mutable
    # handle on the globals at all).
    global_handles: set[str] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        if _terminal_name(node.value.func) in _REGISTRY_GETTERS:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    global_handles.add(target.id)

    def is_global_handle(base: ast.AST) -> bool:
        if isinstance(base, ast.Call):
            return _terminal_name(base.func) in _REGISTRY_GETTERS
        return isinstance(base, ast.Name) and base.id in global_handles

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _REGISTRY_MUTATORS and is_global_handle(
                node.func.value
            ):
                yield node, (
                    f"direct `.{node.func.attr}()` on the process-global "
                    "registry/tracer in worker-side code; configure through "
                    "repro.obs.distributed.configure_worker_observability"
                )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "enabled"
                    and is_global_handle(target.value)
                ):
                    yield target, (
                        "direct `.enabled = ...` on the process-global "
                        "registry/tracer in worker-side code; configure "
                        "through repro.obs.distributed"
                        ".configure_worker_observability"
                    )
