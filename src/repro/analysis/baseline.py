"""Lint baseline: ratchet known findings so only *new* ones fail CI.

A baseline is a committed JSON file mapping finding keys to occurrence
counts. The key is ``(path, rule_id, message)`` — deliberately **not**
the line number, so reformatting or adding imports above a known finding
does not break the gate, while a genuinely new violation (new file, new
rule, or new message) always does. Counts catch duplication: a second
occurrence of an already-baselined finding in the same file still fails.

Workflow::

    python -m repro lint src/repro --strict --baseline .simlint-baseline.json
    # after auditing a finding you cannot fix yet:
    python -m repro lint src/repro --strict --baseline .simlint-baseline.json \
        --update-baseline

The baseline should shrink over time; ``--update-baseline`` rewrites the
file from scratch, so fixed findings fall out automatically.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from .findings import Finding

__all__ = [
    "baseline_key",
    "load_baseline",
    "save_baseline",
    "filter_new_findings",
    "BaselineError",
]

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """Raised for a missing or malformed baseline file."""


def baseline_key(f: Finding) -> str:
    """Stable identity of a finding: ``path::rule_id::message``."""
    return f"{f.path}::{f.rule_id}::{f.message}"


def load_baseline(path: str) -> dict[str, int]:
    """Read a baseline file into ``{key: count}``.

    Raises :class:`BaselineError` when the file is missing or malformed —
    a CI gate silently running without its baseline would pass builds it
    should fail.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        raise BaselineError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline file is not valid JSON: {path}: {exc}") from None
    if (
        not isinstance(payload, dict)
        or payload.get("version") != _FORMAT_VERSION
        or not isinstance(payload.get("findings"), dict)
    ):
        raise BaselineError(
            f"baseline file has unexpected structure: {path} "
            f"(want {{'version': {_FORMAT_VERSION}, 'findings': {{...}}}})"
        )
    out: dict[str, int] = {}
    for key, count in payload["findings"].items():
        if not isinstance(key, str) or not isinstance(count, int) or count < 1:
            raise BaselineError(f"bad baseline entry {key!r}: {count!r} in {path}")
        out[key] = count
    return out


def save_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write the baseline for the given findings; returns the entry count."""
    counts = Counter(baseline_key(f) for f in findings)
    payload = {
        "version": _FORMAT_VERSION,
        "findings": {k: counts[k] for k in sorted(counts)},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return len(counts)


def filter_new_findings(
    findings: list[Finding], baseline: dict[str, int]
) -> list[Finding]:
    """Findings not covered by the baseline (order-preserving).

    For each key the first ``baseline[key]`` occurrences are absorbed;
    any excess — and every unknown key — passes through and should fail
    the gate.
    """
    budget = dict(baseline)
    out: list[Finding] = []
    for f in findings:
        key = baseline_key(f)
        remaining = budget.get(key, 0)
        if remaining > 0:
            budget[key] = remaining - 1
        else:
            out.append(f)
    return out
