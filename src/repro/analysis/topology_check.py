"""Topology artifact validator: structural invariants of a Network.

Every downstream subsystem (routing, simulation, partitioning) assumes
these invariants silently; a violation produced by a buggy generator or
a hand-built network used to surface only as wrong results. Rule ids
use the ``TOPO2xx`` range.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .findings import Finding, Severity, format_findings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topology.models import Network

__all__ = ["TopologyValidationError", "check_topology", "validate_topology"]

_ARTIFACT = "<topology>"


class TopologyValidationError(ValueError):
    """Raised by :func:`validate_topology` when error findings exist."""

    def __init__(self, findings: list[Finding]) -> None:
        super().__init__("invalid topology:\n" + format_findings(findings))
        self.findings = findings


def _finding(rule_id: str, message: str, severity: Severity = Severity.ERROR) -> Finding:
    return Finding(
        rule_id=rule_id, severity=severity, path=_ARTIFACT, line=0, col=0, message=message
    )


def check_topology(net: "Network") -> list[Finding]:
    """Validate a :class:`repro.topology.Network`; returns findings.

    Checks (one rule id each):

    - ``TOPO201`` connectivity: every node reachable from node 0,
    - ``TOPO202`` link attributes: positive latency and bandwidth,
    - ``TOPO203`` symmetric border links: an AS-boundary link recorded by
      AS *a* toward *b* must be mirrored by *b* toward *a* and must be a
      real physical link,
    - ``TOPO204`` duplicate parallel links with conflicting attributes,
    - ``TOPO205`` AS membership: routers/hosts listed in a domain carry
      that domain's ``as_id``, and every node's AS (when domains exist)
      is registered.
    """
    findings: list[Finding] = []

    if not net.is_connected():
        findings.append(
            _finding(
                "TOPO201",
                f"network is disconnected ({net.num_nodes} nodes, "
                f"{net.num_links} links): some nodes are unreachable",
            )
        )

    for link in net.links:
        if link.latency_s <= 0:
            findings.append(
                _finding(
                    "TOPO202",
                    f"link {link.link_id} ({link.u}-{link.v}) has non-positive "
                    f"latency {link.latency_s!r}",
                )
            )
        if link.bandwidth_bps <= 0:
            findings.append(
                _finding(
                    "TOPO202",
                    f"link {link.link_id} ({link.u}-{link.v}) has non-positive "
                    f"bandwidth {link.bandwidth_bps!r}",
                )
            )

    for as_id, dom in net.as_domains.items():
        for nbr, pairs in dom.border_links.items():
            mirror = net.as_domains.get(nbr)
            for local, remote in pairs:
                endpoints_exist = all(0 <= x < net.num_nodes for x in (local, remote))
                if not endpoints_exist or net.link_between(local, remote) is None:
                    findings.append(
                        _finding(
                            "TOPO203",
                            f"AS {as_id} records border link ({local}, {remote}) "
                            f"toward AS {nbr} but no physical link joins them",
                        )
                    )
                if mirror is None or (remote, local) not in mirror.border_links.get(
                    as_id, []
                ):
                    findings.append(
                        _finding(
                            "TOPO203",
                            f"border link ({local}, {remote}) of AS {as_id} toward "
                            f"AS {nbr} is not mirrored by AS {nbr}",
                        )
                    )

    seen: dict[tuple[int, int], tuple[float, float]] = {}
    for link in net.links:
        key = (min(link.u, link.v), max(link.u, link.v))
        attrs = (link.bandwidth_bps, link.latency_s)
        if key in seen and seen[key] != attrs:
            findings.append(
                _finding(
                    "TOPO204",
                    f"parallel links between {key[0]} and {key[1]} disagree on "
                    f"attributes: {seen[key]} vs {attrs}",
                )
            )
        seen.setdefault(key, attrs)

    if net.as_domains:
        for as_id, dom in net.as_domains.items():
            for member in list(dom.routers) + list(dom.hosts):
                if not 0 <= member < net.num_nodes:
                    findings.append(
                        _finding(
                            "TOPO205",
                            f"AS {as_id} lists unknown node {member}",
                        )
                    )
                elif net.nodes[member].as_id != as_id:
                    findings.append(
                        _finding(
                            "TOPO205",
                            f"node {member} is listed in AS {as_id} but carries "
                            f"as_id {net.nodes[member].as_id}",
                        )
                    )
        for node in net.nodes:
            if node.as_id not in net.as_domains:
                findings.append(
                    _finding(
                        "TOPO205",
                        f"node {node.node_id} belongs to unregistered AS {node.as_id}",
                    )
                )

    return findings


def validate_topology(net: "Network") -> None:
    """Raise :class:`TopologyValidationError` on any error-severity finding."""
    findings = [f for f in check_topology(net) if f.severity >= Severity.ERROR]
    if findings:
        raise TopologyValidationError(findings)
