"""The ``python -m repro lint`` subcommand.

Runs the AST lint rules over files/directories and reports findings in
human or JSON form. Exit status: 0 when no finding reaches the failure
threshold (default ``error``; ``--strict`` lowers it to ``warning``),
1 otherwise, 2 on usage errors such as a missing path.
"""

from __future__ import annotations

import argparse
import os

from .astlint import lint_paths
from .findings import Severity, findings_to_json, format_findings
from .rules import all_rules

__all__ = ["add_lint_arguments", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint CLI options to an argparse parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (directories are walked for .py)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        default="human",
        choices=["human", "json"],
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings as well as errors",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def _rule_table() -> str:
    rows = [
        (r.rule_id, r.name, r.severity.name.lower(),
         ",".join(r.scope) if r.scope else "(everywhere)", r.description)
        for r in all_rules()
    ]
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    return "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(row[:4], widths)) + "  " + row[4]
        for row in rows
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint subcommand; returns the process exit status."""
    if args.list_rules:
        print(_rule_table())
        return 0
    if not args.paths:
        print("error: at least one PATH is required (or use --list-rules)")
        return 2
    for p in args.paths:
        if not os.path.exists(p):
            print(f"error: no such path: {p}")
            return 2
    rules = None
    if args.select:
        wanted = {x.strip() for x in args.select.split(",") if x.strip()}
        rules = [r for r in all_rules() if r.rule_id in wanted]
        unknown = wanted - {r.rule_id for r in rules}
        if unknown:
            print(f"error: unknown rule ids: {sorted(unknown)}")
            return 2
    findings = lint_paths(args.paths, rules)
    print(findings_to_json(findings) if args.fmt == "json" else format_findings(findings))
    threshold = Severity.WARNING if args.strict else Severity.ERROR
    return 1 if any(f.severity >= threshold for f in findings) else 0
