"""The ``python -m repro lint`` subcommand.

Runs the AST lint rules (including the SIM2xx whole-program
parallel-safety pass) over files/directories and reports findings in
human or JSON form. Exit status: 0 when no finding reaches the failure
threshold (default ``error``; ``--strict`` lowers it to ``warning``),
1 otherwise, 2 on usage errors such as a missing path or baseline.

Baseline gating (``--baseline FILE``) subtracts known findings so only
*new* ones are reported and gated; ``--update-baseline`` rewrites the
file from the current run. ``--sarif-out`` additionally writes a SARIF
2.1.0 document, and ``--obs-out`` snapshots the analyzer's own
instruments (files scanned, rules run, findings, wall time) through the
:mod:`repro.obs` registry.
"""

from __future__ import annotations

import argparse
import os

from .astlint import lint_paths_program
from .baseline import BaselineError, filter_new_findings, load_baseline, save_baseline
from .export import write_sarif
from .findings import Severity, findings_to_json, format_findings
from .lintstats import LintStats
from .rules import all_rules

__all__ = ["add_lint_arguments", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint CLI options to an argparse parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (directories are walked for .py)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        default="human",
        choices=["human", "json"],
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings as well as errors",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="JSON baseline of known findings; only new ones are reported",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline FILE from this run's findings and exit 0",
    )
    parser.add_argument(
        "--sarif-out",
        default=None,
        metavar="FILE",
        help="also write findings as a SARIF 2.1.0 document",
    )
    parser.add_argument(
        "--obs-out",
        default=None,
        metavar="FILE",
        help="write an obs snapshot of the analyzer's instruments",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def _rule_table() -> str:
    rows = [
        (r.rule_id, r.name, r.severity.name.lower(),
         ",".join(r.scope) if r.scope else "(everywhere)", r.description)
        for r in all_rules()
    ]
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    return "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(row[:4], widths)) + "  " + row[4]
        for row in rows
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint subcommand; returns the process exit status."""
    if args.list_rules:
        print(_rule_table())
        return 0
    if not args.paths:
        print("error: at least one PATH is required (or use --list-rules)")
        return 2
    for p in args.paths:
        if not os.path.exists(p):
            print(f"error: no such path: {p}")
            return 2
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline FILE")
        return 2
    rules = None
    if args.select:
        wanted = {x.strip() for x in args.select.split(",") if x.strip()}
        rules = [r for r in all_rules() if r.rule_id in wanted]
        unknown = wanted - {r.rule_id for r in rules}
        if unknown:
            print(f"error: unknown rule ids: {sorted(unknown)}")
            return 2

    baseline = None
    if args.baseline and not args.update_baseline:
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"error: {exc}")
            return 2

    if args.obs_out:
        from ..obs import registry as obs_registry

        obs_registry.enable()
    stats = LintStats()
    token = stats.start()
    findings, program, files_scanned = lint_paths_program(args.paths, rules)
    rule_list = rules if rules is not None else all_rules()
    stats.finish(token, files_scanned, len(list(rule_list)), findings)

    if args.update_baseline:
        entries = save_baseline(args.baseline, findings)
        print(
            f"baseline updated: {args.baseline} "
            f"({entries} unique findings, {len(findings)} total)"
        )
        return 0
    if baseline is not None:
        findings = filter_new_findings(findings, baseline)

    if args.sarif_out:
        write_sarif(args.sarif_out, findings, list(rule_list))
    print(findings_to_json(findings) if args.fmt == "json" else format_findings(findings))
    if args.fmt == "human" and program is not None:
        s = program.stats
        print(
            f"simracer: {files_scanned} files, {s['functions']} functions, "
            f"{s['call_edges'] + s['ref_edges']} edges, {s['seeds']} seeds, "
            f"{s['reachable']} LP-reachable"
            + (f", baseline: {args.baseline}" if baseline is not None else "")
        )
    if args.obs_out:
        from ..obs.export import write_snapshot

        write_snapshot(args.obs_out, meta={"tool": "simlint"})
    threshold = Severity.WARNING if args.strict else Severity.ERROR
    return 1 if any(f.severity >= threshold for f in findings) else 0
