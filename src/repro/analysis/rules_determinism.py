"""Determinism lint rules: unseeded randomness and wall-clock reads.

The simulator's claims (load-balance improvements, valley-free routing)
are only testable if a run is a pure function of its inputs and seed.
These rules catch the two classic leaks: global/unseeded RNG state and
wall-clock reads inside simulated time.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .rules import ModuleContext, Severity, rule

__all__ = ["check_unseeded_random", "check_wall_clock", "check_raw_perf_counter"]

#: Functions of the stdlib ``random`` module that draw from (or mutate)
#: the hidden global generator.
_STDLIB_RANDOM_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "sample",
        "shuffle", "uniform", "gauss", "normalvariate", "expovariate",
        "betavariate", "gammavariate", "lognormvariate", "paretovariate",
        "weibullvariate", "triangular", "vonmisesvariate", "getrandbits",
        "seed",
    }
)

#: Legacy ``numpy.random`` module-level functions (global RandomState).
_NUMPY_GLOBAL_FUNCS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "uniform", "normal",
        "standard_normal", "exponential", "poisson", "binomial", "beta",
        "gamma", "seed", "bytes", "random_integers",
    }
)

#: numpy constructors that are only deterministic when given a seed.
_NUMPY_SEEDED_CTORS = frozenset({"default_rng", "RandomState", "SeedSequence"})

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.localtime", "time.gmtime", "time.clock",
    }
)
_WALL_CLOCK_SUFFIXES = (
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
)


def _has_seed_argument(node: ast.Call) -> bool:
    positional = [a for a in node.args if not isinstance(a, ast.Starred)]
    if any(isinstance(a, ast.Starred) for a in node.args):
        return True  # can't see through *args; give the benefit of the doubt
    if positional and not (
        isinstance(positional[0], ast.Constant) and positional[0].value is None
    ):
        return True
    return any(kw.arg in ("seed", "entropy") for kw in node.keywords)


@rule(
    "SIM101",
    "unseeded-random",
    Severity.ERROR,
    scope=("engine/", "routing/", "topology/"),
)
def check_unseeded_random(ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
    """Global or unseeded RNG use in determinism-critical packages.

    Flags stdlib ``random.*`` draws, legacy ``numpy.random.*``
    module-level draws, and ``default_rng()`` / ``RandomState()`` /
    ``SeedSequence()`` constructed without a seed. The fix is to thread
    an explicit ``numpy.random.Generator`` parameter.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = ctx.dotted_name(node.func)
        if dotted is None:
            continue
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] in _STDLIB_RANDOM_FUNCS:
                yield node, (
                    f"call to stdlib global RNG `{dotted}()`; "
                    "thread an explicit numpy.random.Generator instead"
                )
            elif parts[1] == "Random" and not _has_seed_argument(node):
                yield node, "`random.Random()` constructed without a seed"
        elif dotted.startswith("numpy.random."):
            tail = parts[-1]
            if tail in _NUMPY_SEEDED_CTORS:
                if not _has_seed_argument(node):
                    yield node, (
                        f"`numpy.random.{tail}()` constructed without a seed; "
                        "pass one derived from the run's seed"
                    )
            elif tail in _NUMPY_GLOBAL_FUNCS and len(parts) == 3:
                yield node, (
                    f"legacy global-state call `{dotted}()`; "
                    "use an explicit numpy.random.Generator"
                )


@rule("SIM102", "wall-clock", Severity.ERROR, scope=("engine/", "netsim/"))
def check_wall_clock(ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
    """Wall-clock reads inside kernel or event-handler code.

    Simulated components must only observe *simulated* time
    (``sim.now``); a wall-clock read makes event outcomes depend on host
    speed and destroys repeatability. Real-time pacing belongs in
    ``repro.online.realtime``, outside the event path.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = ctx.dotted_name(node.func)
        if dotted is None:
            continue
        if dotted in _WALL_CLOCK_CALLS or dotted.endswith(_WALL_CLOCK_SUFFIXES):
            yield node, (
                f"wall-clock read `{dotted}()` in simulation code; "
                "use the kernel's simulated time (`sim.now`) instead"
            )


_PERF_COUNTER_CALLS = frozenset({"time.perf_counter", "time.perf_counter_ns"})

#: The sanctioned home of every raw ``perf_counter`` read in the package.
_OBS_PACKAGE = "repro/obs"


@rule("SIM106", "raw-perf-counter", Severity.ERROR, scope=("repro/",))
def check_raw_perf_counter(ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
    """Direct ``time.perf_counter`` use outside :mod:`repro.obs`.

    Wall-clock measurement must flow through the observability layer
    (``repro.obs.timers.SpanTimer`` / ``Stopwatch``) so that timing is
    centrally guarded, snapshot-exportable, and absent from simulated
    behavior. A raw ``perf_counter()`` call elsewhere bypasses the
    registry's enable gate and scatters measurement state across the
    codebase.
    """
    if _OBS_PACKAGE in ctx.rel_path:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = ctx.dotted_name(node.func)
        if dotted in _PERF_COUNTER_CALLS:
            yield node, (
                f"raw `{dotted}()` outside repro.obs; use "
                "`repro.obs.timers.SpanTimer` or `Stopwatch` instead"
            )
