"""Static analysis (``simlint``): code lints and artifact validators.

Two halves behind one CLI (``python -m repro lint``):

1. **Code lints** — an AST rule framework with simulator-specific rules
   (unseeded RNG, wall-clock reads, float ``==`` on timestamps, mutable
   default arguments, ``schedule()`` without node attribution). See
   :mod:`repro.analysis.rules_determinism` and
   :mod:`repro.analysis.rules_simulation`. The SIM2xx family
   (:mod:`repro.analysis.rules_parallel`) is *whole-program*: it runs
   over a symbol table (:mod:`repro.analysis.symbols`), a conservative
   call graph (:mod:`repro.analysis.callgraph`), and LP-execution
   reachability (:mod:`repro.analysis.reachability`), gating the future
   multi-core backend. Known findings ratchet through a committed
   baseline (:mod:`repro.analysis.baseline`); SARIF export lives in
   :mod:`repro.analysis.export`.
2. **Artifact validators** — invariant checks over generated artifacts:
   topologies (:mod:`repro.analysis.topology_check`), AS relationship /
   BGP policy structure (:mod:`repro.analysis.bgp_check`), and partition
   assignments (:mod:`repro.analysis.partition_check`). Construction
   boundaries (maBrite, BGP configuration, hierarchical partitioning)
   call the validators so a bad artifact fails loudly at build time
   instead of producing silently wrong results.

Both halves report through the shared :class:`repro.analysis.Finding`
model, so CI can gate on one JSON document.
"""

from .astlint import lint_file, lint_paths, lint_paths_program, lint_source, lint_sources
from .baseline import (
    BaselineError,
    baseline_key,
    filter_new_findings,
    load_baseline,
    save_baseline,
)
from .bgp_check import BgpPolicyError, check_bgp_policy, validate_bgp_policy
from .callgraph import CallGraph, build_call_graph
from .export import findings_to_sarif, write_sarif
from .findings import Finding, Severity, findings_to_json, format_findings, max_severity
from .partition_check import (
    PartitionValidationError,
    check_partition,
    validate_partition,
)
from .reachability import ProgramContext, build_program_context
from .rules import LintRule, ModuleContext, all_rules, get_rule, rule
from .symbols import ProgramIndex
from .topology_check import TopologyValidationError, check_topology, validate_topology

__all__ = [
    "Finding",
    "Severity",
    "LintRule",
    "ModuleContext",
    "rule",
    "all_rules",
    "get_rule",
    "lint_source",
    "lint_sources",
    "lint_file",
    "lint_paths",
    "lint_paths_program",
    "ProgramIndex",
    "CallGraph",
    "build_call_graph",
    "ProgramContext",
    "build_program_context",
    "baseline_key",
    "load_baseline",
    "save_baseline",
    "filter_new_findings",
    "BaselineError",
    "findings_to_sarif",
    "write_sarif",
    "format_findings",
    "findings_to_json",
    "max_severity",
    "check_topology",
    "validate_topology",
    "TopologyValidationError",
    "check_bgp_policy",
    "validate_bgp_policy",
    "BgpPolicyError",
    "check_partition",
    "validate_partition",
    "PartitionValidationError",
]
