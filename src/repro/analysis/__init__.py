"""Static analysis (``simlint``): code lints and artifact validators.

Two halves behind one CLI (``python -m repro lint``):

1. **Code lints** — an AST rule framework with simulator-specific rules
   (unseeded RNG, wall-clock reads, float ``==`` on timestamps, mutable
   default arguments, ``schedule()`` without node attribution). See
   :mod:`repro.analysis.rules_determinism` and
   :mod:`repro.analysis.rules_simulation`.
2. **Artifact validators** — invariant checks over generated artifacts:
   topologies (:mod:`repro.analysis.topology_check`), AS relationship /
   BGP policy structure (:mod:`repro.analysis.bgp_check`), and partition
   assignments (:mod:`repro.analysis.partition_check`). Construction
   boundaries (maBrite, BGP configuration, hierarchical partitioning)
   call the validators so a bad artifact fails loudly at build time
   instead of producing silently wrong results.

Both halves report through the shared :class:`repro.analysis.Finding`
model, so CI can gate on one JSON document.
"""

from .astlint import lint_file, lint_paths, lint_source
from .bgp_check import BgpPolicyError, check_bgp_policy, validate_bgp_policy
from .findings import Finding, Severity, findings_to_json, format_findings, max_severity
from .partition_check import (
    PartitionValidationError,
    check_partition,
    validate_partition,
)
from .rules import LintRule, ModuleContext, all_rules, get_rule, rule
from .topology_check import TopologyValidationError, check_topology, validate_topology

__all__ = [
    "Finding",
    "Severity",
    "LintRule",
    "ModuleContext",
    "rule",
    "all_rules",
    "get_rule",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_findings",
    "findings_to_json",
    "max_severity",
    "check_topology",
    "validate_topology",
    "TopologyValidationError",
    "check_bgp_policy",
    "validate_bgp_policy",
    "BgpPolicyError",
    "check_partition",
    "validate_partition",
    "PartitionValidationError",
]
