"""Whole-program symbol table for the simracer parallel-safety pass.

One :class:`ProgramIndex` is built per lint invocation from the already
parsed :class:`~repro.analysis.rules.ModuleContext` objects. It records,
for every linted module:

- the module's dotted name (derived from its path),
- every function and method as a :class:`FunctionInfo` with a stable
  qualified name (``module:Class.method`` / ``module:function``),
- module-level *mutable* bindings (dict/list/set literals and
  constructors, ``itertools.count`` streams) — the state that silently
  forks per process under a ``multiprocessing`` backend,
- per-class attribute *kind* inference (set / dict / list / rng) from
  class-level annotations, dataclass fields, and ``self.x = ...``
  assignments in any method, plus class-level mutable attributes shared
  across instances,
- an import map with *relative imports resolved* (the per-file
  ``ModuleContext`` only resolves absolute ones), so a global defined in
  ``engine/events.py`` and mutated through ``from .events import _seq``
  is recognized as the same object.

The index is deliberately conservative: where a receiver's type cannot
be resolved, consumers fall back to by-name matching (every known method
or attribute with that name). Erring toward "reachable"/"shared" is the
right failure mode for an analysis whose clean report doubles as the
shardability spec of the multi-core backend.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .rules import ModuleContext

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "GlobalMutable",
    "ProgramIndex",
    "module_name_for",
    "infer_kind",
    "kind_from_annotation",
]

#: constructors whose result is a mutable container (kind name by callee)
_MUTABLE_CTORS = {
    "dict": "dict",
    "list": "list",
    "set": "set",
    "collections.defaultdict": "dict",
    "collections.OrderedDict": "dict",
    "collections.Counter": "dict",
    "collections.deque": "list",
    "itertools.count": "counter",
}

#: RNG constructors (kind ``rng``); aliasing and payload rules use these.
RNG_CTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.Generator",
        "random.Random",
    }
)

#: annotation heads mapping to a container kind
_ANNOTATION_KINDS = {
    "dict": "dict",
    "Dict": "dict",
    "defaultdict": "dict",
    "DefaultDict": "dict",
    "OrderedDict": "dict",
    "Mapping": "dict",
    "MutableMapping": "dict",
    "set": "set",
    "Set": "set",
    "frozenset": "set",
    "FrozenSet": "set",
    "AbstractSet": "set",
    "MutableSet": "set",
    "list": "list",
    "List": "list",
    "Generator": "rng",
}


def module_name_for(rel_path: str) -> str:
    """Dotted module name of a source path.

    Anchors at the last path component named ``repro`` when present
    (``src/repro/engine/kernel.py`` -> ``repro.engine.kernel``) so the
    same module gets the same name whether linted via ``src/repro`` or an
    absolute path; fixture trees without a ``repro`` component fall back
    to the full path-derived name.
    """
    parts = rel_path.split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro") :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


def _callee_name(node: ast.Call, ctx: ModuleContext) -> str | None:
    return ctx.dotted_name(node.func)


def infer_kind(value: ast.AST, ctx: ModuleContext) -> str | None:
    """The container kind of an expression (None when not inferable).

    Kinds: ``dict``, ``list``, ``set``, ``counter`` (an
    ``itertools.count`` stream), ``rng`` (a seeded generator object).
    """
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        dotted = _callee_name(value, ctx)
        if dotted is None:
            return None
        if dotted in RNG_CTORS:
            return "rng"
        kind = _MUTABLE_CTORS.get(dotted)
        if kind is not None:
            return kind
        # dataclasses.field(default_factory=...) is *per-instance* state;
        # report its kind for iteration rules but never as shared.
        if dotted.endswith("field"):
            for kw in value.keywords:
                if kw.arg == "default_factory" and isinstance(kw.value, ast.Name):
                    return {"dict": "dict", "list": "list", "set": "set"}.get(
                        kw.value.id
                    )
    return None


def kind_from_annotation(ann: ast.AST | None) -> str | None:
    """Container kind implied by a type annotation node (None if unknown)."""
    if ann is None:
        return None
    if isinstance(ann, ast.Subscript):
        return kind_from_annotation(ann.value)
    if isinstance(ann, ast.Name):
        return _ANNOTATION_KINDS.get(ann.id)
    if isinstance(ann, ast.Attribute):
        return _ANNOTATION_KINDS.get(ann.attr)
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        head = ann.value.split("[", 1)[0].strip()
        return _ANNOTATION_KINDS.get(head.split(".")[-1])
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        # ``dict[int, str] | None`` — the optional part carries the kind.
        return kind_from_annotation(ann.left) or kind_from_annotation(ann.right)
    return None


@dataclass
class FunctionInfo:
    """One function or method of the linted program."""

    qualname: str  #: ``module:Class.method`` or ``module:function``
    module: str
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: ModuleContext

    @property
    def short(self) -> str:
        """Human name: ``Class.method`` or bare ``function``."""
        return f"{self.cls}.{self.name}" if self.cls else self.name


@dataclass
class GlobalMutable:
    """A module-level mutable binding (shared state under sharding)."""

    module: str
    name: str
    kind: str
    lineno: int
    path: str

    @property
    def qualname(self) -> str:
        """``module.NAME`` — the key mutation sites resolve to."""
        return f"{self.module}.{self.name}"


@dataclass
class ClassInfo:
    """Per-class symbol information."""

    qualname: str  #: ``module:Class``
    module: str
    name: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> inferred container kind
    attr_kinds: dict[str, str] = field(default_factory=dict)
    #: class-level mutable attributes (shared across instances) that no
    #: ``__init__`` assignment shadows, name -> definition line
    shared_mutable_attrs: dict[str, int] = field(default_factory=dict)
    #: base-class names as written (unresolved)
    base_names: tuple[str, ...] = ()


def _self_attr_targets(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Attribute names assigned as ``self.x = ...`` anywhere in ``fn``."""
    out: set[str] = set()
    for node in ast.walk(fn):
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for tgt in targets:
            if (
                isinstance(tgt, ast.Attribute)
                and isinstance(tgt.value, ast.Name)
                and tgt.value.id == "self"
            ):
                out.add(tgt.attr)
    return out


def _resolve_relative(module: str, target: str | None, level: int) -> str:
    """Absolute module named by a relative import inside ``module``."""
    if level == 0:
        return target or ""
    parts = module.split(".")
    # level 1 = the containing package of a module file.
    base = parts[: len(parts) - level] if len(parts) >= level else []
    return ".".join(base + ([target] if target else []))


class ProgramIndex:
    """Symbol table over every module of one lint invocation."""

    def __init__(self, contexts: list[ModuleContext]) -> None:
        #: dotted module name -> its ModuleContext
        self.modules: dict[str, ModuleContext] = {}
        #: rel_path -> dotted module name
        self.module_of_path: dict[str, str] = {}
        #: qualified name -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        #: method/function bare name -> every FunctionInfo with that name
        self.by_name: dict[str, list[FunctionInfo]] = {}
        #: ``module:Class`` -> ClassInfo
        self.classes: dict[str, ClassInfo] = {}
        #: class bare name -> every ClassInfo with that name
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        #: ``module.NAME`` -> GlobalMutable
        self.globals_mutable: dict[str, GlobalMutable] = {}
        #: attribute name -> kind, merged across classes (by-name fallback)
        self.attr_kinds: dict[str, str] = {}
        #: module -> alias -> fully qualified name (relative imports resolved)
        self.imports: dict[str, dict[str, str]] = {}

        for ctx in contexts:
            self._index_module(ctx)

    # ------------------------------------------------------------------
    def _index_module(self, ctx: ModuleContext) -> None:
        module = module_name_for(ctx.rel_path)
        self.modules[module] = ctx
        self.module_of_path[ctx.rel_path] = module
        imports = dict(ctx.from_imports)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level > 0:
                base = _resolve_relative(module, node.module, node.level)
                for alias in node.names:
                    imports[alias.asname or alias.name] = f"{base}.{alias.name}"
        self.imports[module] = imports

        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, None, stmt, ctx)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(module, stmt, ctx)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._index_global(module, stmt, ctx)

    def _add_function(
        self,
        module: str,
        cls: str | None,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: ModuleContext,
    ) -> FunctionInfo:
        qual = f"{module}:{cls}.{node.name}" if cls else f"{module}:{node.name}"
        info = FunctionInfo(
            qualname=qual, module=module, cls=cls, name=node.name, node=node, ctx=ctx
        )
        self.functions[qual] = info
        self.by_name.setdefault(node.name, []).append(info)
        return info

    def _index_class(self, module: str, node: ast.ClassDef, ctx: ModuleContext) -> None:
        info = ClassInfo(
            qualname=f"{module}:{node.name}",
            module=module,
            name=node.name,
            node=node,
            base_names=tuple(
                b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
                for b in node.bases
            ),
        )
        init_assigned: set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = self._add_function(
                    module, node.name, stmt, ctx
                )
                self._scan_self_assignments(stmt, info, ctx)
                if stmt.name == "__init__":
                    init_assigned |= _self_attr_targets(stmt)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                kind = kind_from_annotation(stmt.annotation) or (
                    infer_kind(stmt.value, ctx) if stmt.value else None
                )
                if kind:
                    info.attr_kinds.setdefault(stmt.target.id, kind)
                self._maybe_shared_attr(info, stmt.target.id, stmt.value, ctx, stmt)
            elif isinstance(stmt, ast.Assign):
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name):
                        kind = infer_kind(stmt.value, ctx)
                        if kind:
                            info.attr_kinds.setdefault(tgt.id, kind)
                        self._maybe_shared_attr(info, tgt.id, stmt.value, ctx, stmt)
        # An attribute re-assigned per instance in __init__ is not shared.
        for name in init_assigned:
            info.shared_mutable_attrs.pop(name, None)
        self.classes[info.qualname] = info
        self.classes_by_name.setdefault(node.name, []).append(info)
        for attr, kind in info.attr_kinds.items():
            self.attr_kinds.setdefault(attr, kind)

    def _maybe_shared_attr(
        self,
        info: ClassInfo,
        name: str,
        value: ast.AST | None,
        ctx: ModuleContext,
        stmt: ast.stmt,
    ) -> None:
        if value is None:
            return
        kind = infer_kind(value, ctx)
        # dataclasses.field defaults construct per instance — not shared.
        is_field = isinstance(value, ast.Call) and (
            _callee_name(value, ctx) or ""
        ).endswith("field")
        if kind in ("dict", "list", "set", "counter") and not is_field:
            info.shared_mutable_attrs[name] = stmt.lineno

    def _scan_self_assignments(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        info: ClassInfo,
        ctx: ModuleContext,
    ) -> None:
        for node in ast.walk(fn):
            target = None
            ann = None
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, ann, value = node.target, node.annotation, node.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                kind = kind_from_annotation(ann) or (
                    infer_kind(value, ctx) if value is not None else None
                )
                if kind:
                    info.attr_kinds.setdefault(target.attr, kind)
        # Parameter annotations flow into attr kinds through the common
        # ``self.x = x`` idiom: ``def __init__(self, x: dict): self.x = x``.
        param_kinds = {
            a.arg: kind_from_annotation(a.annotation)
            for a in fn.args.args + fn.args.kwonlyargs
            if a.annotation is not None
        }
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id == "self"
                and isinstance(node.value, ast.Name)
            ):
                kind = param_kinds.get(node.value.id)
                if kind:
                    info.attr_kinds.setdefault(node.targets[0].attr, kind)

    def _index_global(
        self, module: str, stmt: ast.Assign | ast.AnnAssign, ctx: ModuleContext
    ) -> None:
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        value = stmt.value
        for tgt in targets:
            if not isinstance(tgt, ast.Name):
                continue
            kind = (infer_kind(value, ctx) if value is not None else None) or (
                kind_from_annotation(stmt.annotation)
                if isinstance(stmt, ast.AnnAssign)
                else None
            )
            if kind in ("dict", "list", "set", "counter"):
                gm = GlobalMutable(
                    module=module,
                    name=tgt.id,
                    kind=kind,
                    lineno=stmt.lineno,
                    path=ctx.rel_path,
                )
                self.globals_mutable[gm.qualname] = gm

    # ------------------------------------------------------------------
    # Resolution helpers used by the call graph and the SIM2xx rules
    # ------------------------------------------------------------------
    def resolve_global(self, name: str, module: str) -> GlobalMutable | None:
        """The module-level mutable a bare name refers to, if any.

        Checks the module's own globals first, then its (relative-import
        aware) import map — so ``from .events import _seq as _g; next(_g)``
        resolves to ``repro.engine.events._seq``.
        """
        own = self.globals_mutable.get(f"{module}.{name}")
        if own is not None:
            return own
        fq = self.imports.get(module, {}).get(name)
        if fq is not None:
            return self.globals_mutable.get(fq)
        return None

    def class_of_method(self, fi: FunctionInfo) -> ClassInfo | None:
        """The ClassInfo a method belongs to (None for free functions)."""
        if fi.cls is None:
            return None
        return self.classes.get(f"{fi.module}:{fi.cls}")

    def attr_kind(self, cls: ClassInfo | None, attr: str) -> str | None:
        """Attribute kind: precise within ``cls``, else by-name fallback."""
        if cls is not None:
            kind = cls.attr_kinds.get(attr)
            if kind is not None:
                return kind
        return self.attr_kinds.get(attr)
