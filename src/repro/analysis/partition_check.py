"""Partition artifact validator: assignment-vector invariants.

A partition is an ``assignment`` vector mapping each graph vertex
(simulated node) to an engine id in ``0..k-1``. The validators catch the
failure modes a buggy partitioner produces: unassigned or out-of-range
vertices, empty engines (wasted hardware, divide-by-zero in efficiency
metrics), and weight-accounting drift. Rule ids use ``PART4xx``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .findings import Finding, Severity, format_findings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..partition.graph import WeightedGraph

__all__ = ["PartitionValidationError", "check_partition", "validate_partition"]

_ARTIFACT = "<partition>"


class PartitionValidationError(ValueError):
    """Raised by :func:`validate_partition` when error findings exist."""

    def __init__(self, findings: list[Finding]) -> None:
        super().__init__("invalid partition:\n" + format_findings(findings))
        self.findings = findings


def _finding(rule_id: str, message: str, severity: Severity = Severity.ERROR) -> Finding:
    return Finding(
        rule_id=rule_id, severity=severity, path=_ARTIFACT, line=0, col=0, message=message
    )


def check_partition(
    graph: "WeightedGraph",
    assignment: Sequence[int] | np.ndarray,
    num_parts: int,
) -> list[Finding]:
    """Validate an assignment vector against its graph; returns findings.

    Checks (one rule id each):

    - ``PART401`` coverage: one entry per vertex, every entry >= 0
      (every simulated router assigned to an engine),
    - ``PART402`` range: every entry < ``num_parts``,
    - ``PART403`` occupancy: no empty part (each engine hosts >= 1
      vertex) — skipped when the graph has fewer vertices than parts,
    - ``PART404`` weight accounting: per-part weights sum to the graph's
      total vertex weight (relative tolerance 1e-9).
    """
    findings: list[Finding] = []
    part = np.asarray(assignment, dtype=np.int64)
    n = graph.num_vertices

    if part.ndim != 1 or part.shape[0] != n:
        findings.append(
            _finding(
                "PART401",
                f"assignment has shape {part.shape}, expected ({n},): "
                "every vertex needs exactly one engine",
            )
        )
        return findings  # remaining checks are meaningless on a bad shape

    unassigned = np.flatnonzero(part < 0)
    if unassigned.size:
        findings.append(
            _finding(
                "PART401",
                f"{unassigned.size} unassigned vertices (first few: "
                f"{unassigned[:5].tolist()})",
            )
        )
    out_of_range = np.flatnonzero(part >= num_parts)
    if out_of_range.size:
        findings.append(
            _finding(
                "PART402",
                f"{out_of_range.size} vertices assigned to parts >= {num_parts} "
                f"(first few: {part[out_of_range[:5]].tolist()})",
            )
        )
    if unassigned.size or out_of_range.size:
        return findings

    counts = np.bincount(part, minlength=num_parts)
    empties = np.flatnonzero(counts == 0)
    if empties.size and n >= num_parts:
        findings.append(
            _finding(
                "PART403",
                f"{empties.size} empty parts of {num_parts} "
                f"(ids: {empties[:8].tolist()}): engines would sit idle",
            )
        )

    weights = graph.partition_weights(part, num_parts)
    total = float(weights.sum())
    expected = graph.total_vertex_weight
    if not np.isclose(total, expected, rtol=1e-9, atol=1e-9):
        findings.append(
            _finding(
                "PART404",
                f"partition weights sum to {total!r} but the graph's total "
                f"vertex weight is {expected!r}",
            )
        )

    return findings


def validate_partition(
    graph: "WeightedGraph",
    assignment: Sequence[int] | np.ndarray,
    num_parts: int,
) -> None:
    """Raise :class:`PartitionValidationError` on any error finding."""
    findings = [
        f
        for f in check_partition(graph, assignment, num_parts)
        if f.severity >= Severity.ERROR
    ]
    if findings:
        raise PartitionValidationError(findings)
