"""Finding model shared by the code lints and the artifact validators.

A :class:`Finding` is one diagnostic: a rule id, a severity, a location
(file path plus line/column for code lints, an artifact label for
validators), and a human-readable message. The CLI renders findings
either as GCC-style text or as a JSON document suitable for CI gating.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass

__all__ = ["Severity", "Finding", "format_findings", "findings_to_json", "max_severity"]


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering allows ``>=`` threshold checks."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        """Parse a case-insensitive severity name ('error', 'warning', 'info')."""
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a lint rule or an artifact validator.

    ``path`` is a file path for code lints or an artifact label (for
    example ``<topology>``) for validators; ``line``/``col`` are 1-based
    and 0 when the finding has no source location.
    """

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """GCC-style one-line rendering: ``path:line:col: SEV RULE message``."""
        loc = f"{self.path}:{self.line}:{self.col}" if self.line else self.path
        return f"{loc}: {self.severity.name.lower()} {self.rule_id} {self.message}"


def _sort_key(f: Finding) -> tuple:
    return (f.path, f.line, f.col, f.rule_id)


def format_findings(findings: list[Finding]) -> str:
    """Human-readable report: sorted findings plus a severity tally."""
    ordered = sorted(findings, key=_sort_key)
    lines = [f.render() for f in ordered]
    tally = {s: sum(1 for f in findings if f.severity is s) for s in Severity}
    summary = ", ".join(
        f"{n} {s.name.lower()}{'s' if n != 1 else ''}"
        for s, n in sorted(tally.items(), reverse=True)
        if n
    )
    lines.append(summary if findings else "clean: no findings")
    return "\n".join(lines)


def findings_to_json(findings: list[Finding]) -> str:
    """JSON document: ``{"findings": [...], "counts": {...}}`` (stable order)."""
    ordered = sorted(findings, key=_sort_key)
    payload = {
        "findings": [
            {**asdict(f), "severity": f.severity.name.lower()} for f in ordered
        ],
        "counts": {
            s.name.lower(): sum(1 for f in findings if f.severity is s)
            for s in Severity
        },
    }
    return json.dumps(payload, indent=2)


def max_severity(findings: list[Finding]) -> Severity | None:
    """The highest severity present, or None when there are no findings."""
    return max((f.severity for f in findings), default=None)
