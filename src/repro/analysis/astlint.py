"""AST lint driver: parse sources, build contexts, run every rule.

The driver is deliberately simple — one parse per file, one pass per
rule — because the rule set is small and the repository is ~150 files;
there is no need for a shared-visitor optimization at this scale.

Multi-file entry points (:func:`lint_sources`, :func:`lint_paths`) run
the **whole-program pass** first: a symbol table, a conservative call
graph, and LP-execution reachability are built over every parsed module
and attached to each :class:`ModuleContext` as ``ctx.program``, which
arms the SIM2xx parallel-safety rules. The single-file entry point
(:func:`lint_source`) has no program to analyze, so those rules stay
silent there by design.

Importing this module loads the built-in rule modules so that
:func:`repro.analysis.rules.all_rules` is fully populated.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable

from .findings import Finding, Severity
from .rules import LintRule, ModuleContext, all_rules

# Rule modules register themselves on import.
from . import rules_determinism as _rules_determinism  # noqa: F401
from . import rules_parallel as _rules_parallel  # noqa: F401
from . import rules_simulation as _rules_simulation  # noqa: F401

__all__ = [
    "lint_source",
    "lint_sources",
    "lint_file",
    "lint_paths",
    "lint_paths_program",
    "iter_python_files",
]


def _collect_imports(tree: ast.Module) -> tuple[dict[str, str], dict[str, str]]:
    """Map import aliases and from-imports to fully-qualified names."""
    module_aliases: dict[str, str] = {}
    from_imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    module_aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    module_aliases[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                from_imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return module_aliases, from_imports


def _make_context(source: str, path: str) -> ModuleContext:
    tree = ast.parse(source, filename=path)
    module_aliases, from_imports = _collect_imports(tree)
    return ModuleContext(
        path=path,
        rel_path=path.replace(os.sep, "/"),
        tree=tree,
        lines=source.splitlines(),
        module_aliases=module_aliases,
        from_imports=from_imports,
    )


def _syntax_error_finding(exc: SyntaxError, path: str) -> Finding:
    return Finding(
        rule_id="SIM000",
        severity=Severity.ERROR,
        path=path,
        line=exc.lineno or 0,
        col=exc.offset or 0,
        message=f"syntax error: {exc.msg}",
    )


def lint_source(
    source: str, path: str, rules: Iterable[LintRule] | None = None
) -> list[Finding]:
    """Lint one in-memory module; ``path`` drives rule scoping.

    A syntax error is reported as a ``SIM000`` error finding rather than
    raised, so one broken file cannot abort a whole-tree lint. No
    whole-program context is built — SIM2xx rules do not fire here.
    """
    try:
        ctx = _make_context(source, path)
    except SyntaxError as exc:
        return [_syntax_error_finding(exc, path)]
    findings: list[Finding] = []
    for r in rules if rules is not None else all_rules():
        findings.extend(r.run(ctx))
    return findings


def lint_sources(
    sources: list[tuple[str, str]], rules: Iterable[LintRule] | None = None
):
    """Lint a set of in-memory modules *as one program*.

    ``sources`` is a list of ``(source_text, path)`` pairs. Returns
    ``(findings, program)`` where ``program`` is the
    :class:`~repro.analysis.reachability.ProgramContext` built over every
    parseable module (None when nothing parsed). This is the entry point
    the SIM2xx fixture tests use: a fixture tree is just a small program.
    """
    from .reachability import build_program_context

    findings: list[Finding] = []
    contexts: list[ModuleContext] = []
    for source, path in sources:
        try:
            contexts.append(_make_context(source, path))
        except SyntaxError as exc:
            findings.append(_syntax_error_finding(exc, path))
    program = build_program_context(contexts) if contexts else None
    for ctx in contexts:
        ctx.program = program
    rule_list = list(rules) if rules is not None else all_rules()
    for ctx in contexts:
        for r in rule_list:
            findings.extend(r.run(ctx))
    return findings, program


def lint_file(path: str, rules: Iterable[LintRule] | None = None) -> list[Finding]:
    """Lint one file on disk (single-module; no whole-program pass)."""
    with open(path, encoding="utf-8") as fh:
        return lint_source(fh.read(), path, rules)


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                out.extend(
                    os.path.join(dirpath, f) for f in filenames if f.endswith(".py")
                )
        else:
            out.append(p)
    return sorted(set(out))


def lint_paths_program(
    paths: Iterable[str], rules: Iterable[LintRule] | None = None
):
    """Lint files/directories as one program.

    Returns ``(findings, program, files_scanned)`` — the CLI uses the
    extra values for the stats line and ``--obs-out`` instrumentation.
    """
    sources: list[tuple[str, str]] = []
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            sources.append((fh.read(), path))
    findings, program = lint_sources(sources, rules)
    return findings, program, len(sources)


def lint_paths(
    paths: Iterable[str], rules: Iterable[LintRule] | None = None
) -> list[Finding]:
    """Lint every python file under the given files/directories."""
    findings, _, _ = lint_paths_program(paths, rules)
    return findings
