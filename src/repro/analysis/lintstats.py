"""Analyzer statistics through the :mod:`repro.obs` registry.

A lint run is a measurement like any other: how many files it scanned,
how many rules it ran, what it found, and how long it took. Publishing
those through the shared instrument registry means ``--obs-out``
snapshots of a CI run include the analyzer alongside the simulator, and
the lint-runtime smoke bound reads the same number the exporters do.

Instruments resolve at construction (registry idiom: one dict lookup
here, a guarded write afterwards) and the wall-clock span flows through
:class:`~repro.obs.timers.SpanTimer` — the sanctioned ``perf_counter``
site, so the analyzer obeys its own SIM106 rule.
"""

from __future__ import annotations

from ..obs import names as obs_names
from ..obs.registry import get_registry
from .findings import Finding, Severity

__all__ = ["LintStats"]


class LintStats:
    """Registry-backed counters for one lint invocation."""

    def __init__(self) -> None:
        reg = get_registry()
        self._obs = reg
        self._obs_files = reg.counter(obs_names.LINT_FILES)
        self._obs_rules = reg.counter(obs_names.LINT_RULES)
        self._obs_err = reg.counter(obs_names.LINT_FINDINGS_ERROR)
        self._obs_warn = reg.counter(obs_names.LINT_FINDINGS_WARNING)
        self._obs_info = reg.counter(obs_names.LINT_FINDINGS_INFO)
        self._obs_wall = reg.timer(obs_names.LINT_WALL)

    def start(self) -> float:
        """Open the wall-clock span; returns the timer token."""
        return self._obs_wall.start()

    def finish(
        self,
        token: float,
        files_scanned: int,
        rules_run: int,
        findings: list[Finding],
    ) -> None:
        """Close the span and record the run's counts."""
        self._obs_wall.stop(token)
        if not self._obs.enabled:
            return
        self._obs_files.inc(files_scanned)
        self._obs_rules.inc(rules_run)
        self._obs_err.inc(
            sum(1 for f in findings if f.severity is Severity.ERROR)
        )
        self._obs_warn.inc(
            sum(1 for f in findings if f.severity is Severity.WARNING)
        )
        self._obs_info.inc(
            sum(1 for f in findings if f.severity is Severity.INFO)
        )

    @property
    def wall_s(self) -> float:
        """Accumulated analyzer wall-clock seconds (0 when disabled)."""
        return self._obs_wall.total_s
