"""Parallel-safety lint rules (SIM2xx): the shardability gate.

Every rule here consumes the whole-program :class:`ProgramContext`
attached at ``ctx.program`` by :func:`repro.analysis.astlint.lint_sources`
— symbol table, call graph, and LP-execution reachability. When a module
is linted stand-alone (``ctx.program is None``) the rules stay silent:
without reachability there is no way to tell shared simulation state
from offline tooling, and a per-file guess would be all noise.

The family encodes what breaks when the single-process conservative
engine is sharded across ``multiprocessing`` workers:

- **SIM201** — module-level (or class-level shared) mutable state
  written from an LP-reachable function: each worker gets its own copy
  at fork and they silently diverge.
- **SIM202** — iteration over an unordered collection whose loop body
  schedules events or mutates shared state: per-process hash/arrival
  order changes event order, which changes results.
- **SIM203** — statically unpicklable values handed into the event
  pipeline (lambdas, generator expressions, nested closures, open
  handles): they cannot cross the future IPC boundary.
- **SIM204** — two RNG-construction sites deriving the same seed: the
  streams alias, so "independent" noise sources are correlated.
- **SIM205** — accumulated float time (``t += dt`` in a loop): drift
  grows with iteration count and differs between an LP that computed
  ``n`` steps locally and one that received the total remotely.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from .rules import ModuleContext, Severity, rule
from .symbols import RNG_CTORS, FunctionInfo, infer_kind, kind_from_annotation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .reachability import ProgramContext

__all__ = [
    "check_shared_mutable_state",
    "check_unordered_iteration",
    "check_unpicklable_payload",
    "check_rng_stream_aliasing",
    "check_float_time_drift",
]

#: container-mutating method names
_MUTATORS = frozenset(
    {
        "append", "add", "update", "pop", "popitem", "clear", "remove",
        "discard", "extend", "insert", "setdefault", "appendleft",
    }
)

#: bare callee names that enqueue work into the event pipeline
_SCHEDULE_NAMES = frozenset(
    {
        "schedule", "schedule_at", "schedule_after", "inject", "push",
        "send", "deliver", "enqueue",
    }
)


def _program(ctx: ModuleContext) -> "ProgramContext | None":
    prog = ctx.program
    return prog if prog is not None and hasattr(prog, "reachable") else None


def _reachable_functions(
    ctx: ModuleContext, prog: "ProgramContext"
) -> Iterator[FunctionInfo]:
    module = prog.module_of(ctx.rel_path)
    for fi in prog.index.functions.values():
        if fi.module == module and fi.qualname in prog.reachable:
            yield fi


def _chain(prog: "ProgramContext", fi: FunctionInfo) -> str:
    return prog.chain(fi.qualname)


# ---------------------------------------------------------------------------
# SIM201: shared mutable state written on the LP path
# ---------------------------------------------------------------------------
@rule("SIM201", "shared-mutable-state", Severity.ERROR, scope=("repro/",))
def check_shared_mutable_state(ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
    """Module-level mutable state mutated from an LP-reachable function.

    Under a multiprocessing backend each worker forks its own copy of
    module globals and class-level attributes; writes no longer agree
    across LPs. Thread the state through the LP object instead, or
    suppress with a justification when the global is load-bearing for
    single-process determinism (e.g. the event sequence counter).
    """
    prog = _program(ctx)
    if prog is None:
        return
    module = prog.module_of(ctx.rel_path)
    seen: set[tuple[int, int, str]] = set()

    def emit(node: ast.AST, what: str, fi: FunctionInfo) -> Iterator[
        tuple[ast.AST, str]
    ]:
        key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0), what)
        if key in seen:
            return
        seen.add(key)
        yield node, (
            f"{what} is mutated on the LP execution path "
            f"(via {_chain(prog, fi)}); per-process copies will diverge "
            "under a multi-core backend"
        )

    for fi in _reachable_functions(ctx, prog):
        cls = prog.index.class_of_method(fi)
        declared_global: set[str] = set()
        for node in ast.walk(fi.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for node in ast.walk(fi.node):
            # X[...] = v / X += v / X.mutator(...) on a module global.
            root: ast.AST | None = None
            verb = "written"
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for tgt in targets:
                    if isinstance(tgt, ast.Subscript):
                        root = tgt.value
                    elif isinstance(tgt, ast.Name) and tgt.id in declared_global:
                        root, verb = tgt, "rebound"
                    else:
                        continue
                    yield from _check_root(
                        root, verb, ctx, prog, fi, cls, module, node, emit
                    )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _MUTATORS:
                    yield from _check_root(
                        node.func.value, "mutated", ctx, prog, fi, cls, module,
                        node, emit,
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "next"
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                gm = prog.index.resolve_global(node.args[0].id, module)
                if gm is not None and gm.kind == "counter":
                    yield from emit(
                        node,
                        f"module-level counter `{gm.qualname}`",
                        fi,
                    )


def _check_root(
    root: ast.AST,
    verb: str,
    ctx: ModuleContext,
    prog: "ProgramContext",
    fi: FunctionInfo,
    cls,
    module: str,
    node: ast.AST,
    emit,
) -> Iterator[tuple[ast.AST, str]]:
    """Emit when a store/mutation root is a module global or shared attr."""
    if isinstance(root, ast.Name):
        gm = prog.index.resolve_global(root.id, module)
        if gm is not None:
            yield from emit(node, f"module-level {gm.kind} `{gm.qualname}`", fi)
    elif (
        isinstance(root, ast.Attribute)
        and isinstance(root.value, ast.Name)
        and root.value.id == "self"
        and cls is not None
        and root.attr in cls.shared_mutable_attrs
    ):
        yield from emit(
            node,
            f"class-level shared attribute `{cls.name}.{root.attr}`",
            fi,
        )


# ---------------------------------------------------------------------------
# SIM202: unordered iteration feeding scheduling / shared mutation
# ---------------------------------------------------------------------------
def _local_kinds(fi: FunctionInfo) -> dict[str, tuple[str, bool]]:
    """Local name -> (kind, from_literal) inferred inside one function."""
    out: dict[str, tuple[str, bool]] = {}
    for a in fi.node.args.args + fi.node.args.kwonlyargs + fi.node.args.posonlyargs:
        kind = kind_from_annotation(a.annotation)
        if kind:
            out[a.arg] = (kind, False)
    for node in ast.walk(fi.node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            kind = infer_kind(node.value, fi.ctx)
            if kind:
                literal = isinstance(
                    node.value, (ast.Dict, ast.DictComp, ast.List, ast.ListComp)
                )
                out[node.targets[0].id] = (kind, literal)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            kind = kind_from_annotation(node.annotation) or (
                infer_kind(node.value, fi.ctx) if node.value else None
            )
            if kind:
                out[node.target.id] = (kind, False)
    return out


def _iteration_kind(
    iter_node: ast.AST,
    fi: FunctionInfo,
    prog: "ProgramContext",
    locals_: dict[str, tuple[str, bool]],
) -> tuple[str, str] | None:
    """(kind, description) when ``for _ in <iter_node>`` is order-unstable.

    ``sorted(...)`` / ``enumerate(sorted(...))`` wrappers make the
    iteration deterministic and return None. Local *dict literals* are
    exempt (insertion order is the program's own, identical in every
    process); sets are unordered no matter where they live.
    """
    node = iter_node
    # Unwrap enumerate/reversed/list/tuple — they preserve the inner order.
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("enumerate", "reversed", "list", "tuple")
        and node.args
    ):
        node = node.args[0]
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    ):
        return None
    view = None
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in ("items", "keys", "values"):
            view = node.func.attr
            node = node.func.value
        else:
            return None

    module = fi.module
    cls = prog.index.class_of_method(fi)
    kind = None
    desc = ""
    if isinstance(node, ast.Name):
        if node.id in locals_:
            kind, literal = locals_[node.id]
            if kind == "dict" and literal:
                return None  # local literal dict: insertion order is ours
            desc = f"local `{node.id}`"
        else:
            gm = prog.index.resolve_global(node.id, module)
            if gm is not None:
                kind = gm.kind
                desc = f"module-level `{gm.qualname}`"
    elif isinstance(node, ast.Attribute):
        attr_kind = prog.index.attr_kind(
            cls if isinstance(node.value, ast.Name) and node.value.id == "self"
            else None,
            node.attr,
        )
        if attr_kind:
            kind = attr_kind
            desc = f"attribute `.{node.attr}`"
    del view  # .items()/.keys()/.values() carry the dict's own order
    if kind == "set":
        return kind, desc
    if kind == "dict":
        # Non-literal dicts: insertion order depends on arrival order,
        # which differs per LP once state is sharded.
        return kind, desc
    return None


def _body_feeds_simulation(body: list[ast.stmt], loop_vars: set[str]) -> str | None:
    """Why this loop body is order-sensitive (None when it is not)."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                callee = (
                    node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else node.func.id
                    if isinstance(node.func, ast.Name)
                    else None
                )
                if callee in _SCHEDULE_NAMES:
                    return f"calls `{callee}()`"
                if isinstance(node.func, ast.Attribute) and (
                    node.func.attr in _MUTATORS
                ):
                    root = node.func.value
                    if not (
                        isinstance(root, ast.Name) and root.id in loop_vars
                    ):
                        return f"mutates state via `.{node.func.attr}()`"
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for tgt in targets:
                    if isinstance(tgt, ast.Subscript):
                        root = tgt.value
                        if isinstance(root, ast.Attribute) or (
                            isinstance(root, ast.Name)
                            and root.id not in loop_vars
                        ):
                            return "writes through a subscript"
    return None


def _loop_target_names(target: ast.AST) -> set[str]:
    return {
        n.id for n in ast.walk(target) if isinstance(n, ast.Name)
    }


@rule("SIM202", "unordered-iteration", Severity.ERROR, scope=("repro/",))
def check_unordered_iteration(ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
    """Unordered set/dict iteration that schedules or mutates state.

    Event order must be a pure function of the run's inputs. Iterating a
    set (hash order) or a shared dict (arrival order) and scheduling /
    mutating inside the loop bakes per-process ordering into results.
    Wrap the iterable in ``sorted(...)`` with a total key.
    """
    prog = _program(ctx)
    if prog is None:
        return
    for fi in _reachable_functions(ctx, prog):
        locals_ = _local_kinds(fi)
        for node in ast.walk(fi.node):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            hit = _iteration_kind(node.iter, fi, prog, locals_)
            if hit is None:
                continue
            kind, desc = hit
            reason = _body_feeds_simulation(
                node.body, _loop_target_names(node.target)
            )
            if reason is None:
                continue
            yield node, (
                f"iteration over unordered {kind} {desc} whose body {reason} "
                f"(LP-reachable via {_chain(prog, fi)}); wrap the iterable "
                "in sorted(...) with a total key"
            )


# ---------------------------------------------------------------------------
# SIM203: statically unpicklable event payloads
# ---------------------------------------------------------------------------
_REGISTRAR_NAMES = _SCHEDULE_NAMES | frozenset(
    {"udp_bind", "register_tcp_endpoint", "subscribe", "add_callback"}
)


@rule("SIM203", "unpicklable-payload", Severity.ERROR, scope=("repro/",))
def check_unpicklable_payload(ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
    """Unpicklable values handed into the event pipeline.

    Once LPs live in separate processes, every scheduled payload crosses
    an IPC boundary and must pickle. Lambdas, generator expressions,
    functions defined inside the enclosing function (closures), and open
    file handles never will. Pass a bound method plus an ``args`` tuple
    instead — the engine's closure-free dispatch idiom.
    """
    prog = _program(ctx)
    if prog is None:
        return
    for fi in _reachable_functions(ctx, prog):
        nested_defs = {
            n.name
            for n in ast.walk(fi.node)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            and n is not fi.node
        }
        for node in ast.walk(fi.node):
            if not isinstance(node, ast.Call):
                continue
            callee = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else node.func.id
                if isinstance(node.func, ast.Name)
                else None
            )
            if callee not in _REGISTRAR_NAMES:
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            for val in values:
                what = None
                if isinstance(val, ast.Lambda):
                    what = "a lambda"
                elif isinstance(val, ast.GeneratorExp):
                    what = "a generator expression"
                elif isinstance(val, ast.Name) and val.id in nested_defs:
                    what = f"nested function `{val.id}` (a closure)"
                elif (
                    isinstance(val, ast.Call)
                    and isinstance(val.func, ast.Name)
                    and val.func.id == "open"
                ):
                    what = "an open file handle"
                if what is not None:
                    yield val, (
                        f"`{callee}()` receives {what}, which cannot "
                        "cross the future LP process boundary "
                        f"(reachable via {_chain(prog, fi)}); pass a bound "
                        "method with an args tuple instead"
                    )


# ---------------------------------------------------------------------------
# SIM204: RNG stream aliasing
# ---------------------------------------------------------------------------
def _normalize_seed(expr: ast.AST) -> str | None:
    """Canonical text of a seed expression for aliasing comparison.

    Constants render as their value; names and attribute chains render as
    their final segment (so ``self.link.link_id`` and ``link.link_id``
    compare equal — same derivation, different spelling). Returns None
    when the expression contains no integer literal at all: a fully
    dynamic seed is the caller's explicit choice, not an alias.
    """
    has_literal = any(
        isinstance(n, ast.Constant) and isinstance(n.value, int)
        for n in ast.walk(expr)
    )
    if not has_literal:
        return None

    def render(node: ast.AST) -> str | None:
        if isinstance(node, ast.Constant):
            return repr(node.value)
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.BinOp):
            left, right = render(node.left), render(node.right)
            if left is None or right is None:
                return None
            op = type(node.op).__name__
            return f"({left} {op} {right})"
        if isinstance(node, ast.Call):
            inner = [render(a) for a in node.args]
            if any(i is None for i in inner):
                return None
            head = render(node.func)
            return f"{head}({', '.join(i for i in inner if i)})"
        if isinstance(node, ast.UnaryOp):
            inner = render(node.operand)
            return None if inner is None else f"{type(node.op).__name__}{inner}"
        return None

    return render(expr)


def _rng_sites(prog: "ProgramContext") -> dict[str, list[tuple[str, int, str]]]:
    """seed-key -> [(rel_path, line, ctor)] across the whole program."""
    cached = getattr(prog, "_sim204_sites", None)
    if cached is not None:
        return cached
    sites: dict[str, list[tuple[str, int, str]]] = {}
    for module, mctx in sorted(prog.index.modules.items()):
        for node in ast.walk(mctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            dotted = mctx.dotted_name(node.func)
            if dotted is None or dotted not in RNG_CTORS:
                continue
            key = _normalize_seed(node.args[0])
            if key is None:
                continue
            sites.setdefault(key, []).append(
                (mctx.rel_path, node.lineno, dotted.rsplit(".", 1)[-1])
            )
    for group in sites.values():
        group.sort()
    prog._sim204_sites = sites
    return sites


@rule("SIM204", "rng-stream-aliasing", Severity.WARNING, scope=("repro/",))
def check_rng_stream_aliasing(ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
    """Two RNG-construction sites deriving the same seed.

    Generators built from the same seed produce the *same* stream;
    components that believe they draw independent noise are perfectly
    correlated. Derive per-component seeds from a ``SeedSequence`` spawn
    or mix a distinct component tag into the seed.
    """
    prog = _program(ctx)
    if prog is None:
        return
    sites = _rng_sites(prog)
    for key, group in sorted(sites.items()):
        if len(group) < 2:
            continue
        for rel_path, lineno, ctor in group:
            if rel_path != ctx.rel_path:
                continue
            # Paths only (no line numbers): these messages are baseline
            # keys, and unrelated edits must not shift them.
            others = sorted(
                {p for p, ln, _ in group if (p, ln) != (rel_path, lineno)}
            )
            node = _node_at(ctx, lineno)
            yield node, (
                f"`{ctor}()` seed `{key}` also constructs a generator at "
                f"{', '.join(others[:3])}; aliased streams are correlated — "
                "derive per-component seeds via SeedSequence.spawn()"
            )


def _node_at(ctx: ModuleContext, lineno: int) -> ast.AST:
    """Smallest call node starting on ``lineno`` (fallback: synthetic)."""
    best: ast.AST | None = None
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and node.lineno == lineno:
            best = node
            break
    if best is None:
        best = ast.Pass(lineno=lineno, col_offset=0)
    return best


# ---------------------------------------------------------------------------
# SIM205: accumulated float-time drift
# ---------------------------------------------------------------------------
_TIMEISH = ("t", "now", "clock", "ts", "when")


def _is_timeish(name: str) -> bool:
    return name in _TIMEISH or "time" in name.lower()


@rule("SIM205", "float-time-drift", Severity.WARNING, scope=("repro/",))
def check_float_time_drift(ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
    """``t += dt`` accumulation inside a loop on the LP path.

    Repeated float addition drifts by one ULP per step; after 10^6 steps
    two LPs that counted the same interval differently disagree on
    *when* events happen. The engine idiom is multiplicative:
    ``t = t0 + i * dt``.
    """
    prog = _program(ctx)
    if prog is None:
        return
    for fi in _reachable_functions(ctx, prog):
        loops = [
            n for n in ast.walk(fi.node) if isinstance(n, (ast.For, ast.While))
        ]
        for loop in loops:
            for node in ast.walk(loop):
                if not (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                ):
                    continue
                tgt = node.target
                name = (
                    tgt.id
                    if isinstance(tgt, ast.Name)
                    else tgt.attr
                    if isinstance(tgt, ast.Attribute)
                    else None
                )
                if name is None or not _is_timeish(name):
                    continue
                val = node.value
                dt_like = (
                    isinstance(val, ast.Constant)
                    and isinstance(val.value, float)
                ) or (
                    isinstance(val, (ast.Name, ast.Attribute))
                    and "dt" in (
                        val.id if isinstance(val, ast.Name) else val.attr
                    ).lower()
                ) or (
                    isinstance(val, (ast.Name, ast.Attribute))
                    and any(
                        s in (
                            val.id if isinstance(val, ast.Name) else val.attr
                        ).lower()
                        for s in ("step", "delta", "interval")
                    )
                )
                if not dt_like:
                    continue
                yield node, (
                    f"accumulating float time `{name} += ...` in a loop "
                    f"(LP-reachable via {_chain(prog, fi)}); use "
                    "multiplicative time (`t = t0 + i * dt`) to avoid drift"
                )
