"""BGP-policy artifact validator: Gao-Rexford consistency screening.

Validates the AS-relationship structure a generated (or imported)
network carries *before* BGP propagation runs. Coudert et al.'s
feasibility study of distributed BGP found policy-consistency errors to
dominate debugging time; these static checks catch the three classes
that matter here — asymmetric relationships, dangling AS references,
and provider-hierarchy cycles (the degenerate dispute wheel that voids
the Gao-Rexford convergence guarantee). Rule ids use ``BGP3xx``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from .findings import Finding, Severity, format_findings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topology.models import ASDomain, Network

__all__ = ["BgpPolicyError", "check_bgp_policy", "validate_bgp_policy"]

_ARTIFACT = "<bgp-policy>"
_INVERSE = {"provider": "customer", "customer": "provider", "peer": "peer"}


class BgpPolicyError(ValueError):
    """Raised by :func:`validate_bgp_policy` when error findings exist."""

    def __init__(self, findings: list[Finding]) -> None:
        super().__init__("invalid BGP policy:\n" + format_findings(findings))
        self.findings = findings


def _finding(rule_id: str, message: str) -> Finding:
    return Finding(
        rule_id=rule_id,
        severity=Severity.ERROR,
        path=_ARTIFACT,
        line=0,
        col=0,
        message=message,
    )


def _relationship_sets(dom: "ASDomain") -> dict[str, set[int]]:
    return {"provider": dom.providers, "customer": dom.customers, "peer": dom.peers}


def _provider_cycles(domains: dict[int, "ASDomain"]) -> list[list[int]]:
    """Cycles in the customer->provider digraph (empty when hierarchical).

    A cycle ``a -> b -> ... -> a`` means each AS funds the next as its
    customer all the way around — economically impossible and exactly
    the structure that creates BGP disputes: a customer route through
    the cycle is always preferred (highest local-pref), so preference
    around the ring is circular (a dispute wheel). Iterative DFS with an
    explicit stack keeps deep hierarchies safe from recursion limits.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {a: WHITE for a in domains}
    cycles: list[list[int]] = []
    for start in sorted(domains):
        if color[start] != WHITE:
            continue
        stack: list[tuple[int, Iterable[int]]] = [
            (start, iter(sorted(domains[start].providers)))
        ]
        path = [start]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in domains:
                    continue  # dangling reference; reported by BGP302
                if color[nxt] == GRAY:
                    cycles.append(path[path.index(nxt):] + [nxt])
                elif color[nxt] == WHITE:
                    color[nxt] = GRAY
                    path.append(nxt)
                    stack.append((nxt, iter(sorted(domains[nxt].providers))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                path.pop()
                stack.pop()
    return cycles


def check_bgp_policy(domains: "dict[int, ASDomain] | Network") -> list[Finding]:
    """Validate AS relationships; accepts a Network or its domain dict.

    Checks (one rule id each):

    - ``BGP301`` relationship symmetry: if X lists Y as a customer, Y
      must list X as a provider (and peer links must be mutual),
    - ``BGP302`` unknown neighbor: a relationship references an AS id
      with no domain (the class of error that used to surface as a bare
      ``KeyError`` in ``learned_relationship``),
    - ``BGP303`` overlapping roles: the same neighbor appears in two of
      providers/customers/peers,
    - ``BGP304`` provider-hierarchy cycle: the customer->provider digraph
      must be acyclic (static valley-free / dispute-wheel screening).
    """
    if hasattr(domains, "as_domains"):
        domains = domains.as_domains  # type: ignore[union-attr]
    findings: list[Finding] = []

    for as_id in sorted(domains):
        dom = domains[as_id]
        sets = _relationship_sets(dom)
        for rel, members in sets.items():
            for nbr in sorted(members):
                if nbr == as_id:
                    findings.append(
                        _finding("BGP303", f"AS {as_id} lists itself as a {rel}")
                    )
                    continue
                other = domains.get(nbr)
                if other is None:
                    findings.append(
                        _finding(
                            "BGP302",
                            f"AS {as_id} lists unknown AS {nbr} as a {rel}",
                        )
                    )
                    continue
                expected = _INVERSE[rel]
                if as_id not in _relationship_sets(other)[expected]:
                    findings.append(
                        _finding(
                            "BGP301",
                            f"asymmetric relationship: AS {as_id} lists AS {nbr} "
                            f"as a {rel}, but AS {nbr} does not list AS {as_id} "
                            f"as a {expected}",
                        )
                    )
        for a, b in (("provider", "customer"), ("provider", "peer"), ("customer", "peer")):
            overlap = sets[a] & sets[b]
            for nbr in sorted(overlap):
                findings.append(
                    _finding(
                        "BGP303",
                        f"AS {as_id} lists AS {nbr} as both {a} and {b}",
                    )
                )

    for cycle in _provider_cycles(domains):
        findings.append(
            _finding(
                "BGP304",
                "provider-hierarchy cycle (dispute wheel): "
                + " -> ".join(f"AS {a}" for a in cycle),
            )
        )

    return findings


def validate_bgp_policy(domains: "dict[int, ASDomain] | Network") -> None:
    """Raise :class:`BgpPolicyError` on any error-severity finding."""
    findings = [f for f in check_bgp_policy(domains) if f.severity >= Severity.ERROR]
    if findings:
        raise BgpPolicyError(findings)
