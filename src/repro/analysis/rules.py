"""Lint-rule framework: registry, decorator, scoping, and suppression.

A rule is a function from a :class:`ModuleContext` (parsed AST plus
source metadata) to ``(ast-node, message)`` pairs; the :func:`rule`
decorator attaches the id, severity, and directory *scope* and registers
it. Scoping keeps simulator-specific rules (determinism, wall-clock)
confined to the packages where the invariant matters — an unseeded RNG
in a plotting script is fine; in ``engine/`` it silently breaks
reproducibility.

Suppression follows the familiar inline-comment convention::

    t = time.time()  # simlint: disable=SIM102
    # simlint: disable-next-line=SIM101
    x = random.Random()
    # simlint: disable-file=SIM104   (anywhere in the file: whole file)

``disable=all`` suppresses every rule on that line. An inline
``disable=`` matches any physical line of the finding's *statement
header* (so the comment may sit on the closing parenthesis of a
multi-line call), and ``disable-next-line=`` placed above a decorator
covers the decorated definition.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from .findings import Finding, Severity

__all__ = ["ModuleContext", "LintRule", "rule", "all_rules", "get_rule"]

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+|all)")
_SUPPRESS_NEXT_RE = re.compile(
    r"#\s*simlint:\s*disable-next-line=([A-Za-z0-9_,\s]+|all)"
)
_SUPPRESS_FILE_RE = re.compile(r"#\s*simlint:\s*disable-file=([A-Za-z0-9_,\s]+|all)")


@dataclass
class ModuleContext:
    """Everything a rule needs about one source module.

    ``rel_path`` is the path with forward slashes, used for scope
    matching; ``lines`` are the raw source lines (1-based access via
    :meth:`line`).
    """

    path: str
    rel_path: str
    tree: ast.Module
    lines: list[str]
    #: alias -> fully-qualified module name, from import statements
    #: (e.g. ``{"np": "numpy", "random": "random"}``)
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: bare name -> "module.name" for from-imports
    #: (e.g. ``{"choice": "random.choice"}``)
    from_imports: dict[str, str] = field(default_factory=dict)
    #: whole-program context (symbol table, call graph, LP reachability);
    #: ``None`` for single-file lints — the SIM2xx rules then stay silent
    program: "object | None" = None

    def line(self, lineno: int) -> str:
        """The 1-based source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def dotted_name(self, node: ast.AST) -> str | None:
        """Resolve an attribute/name chain to a dotted string.

        Import aliases are expanded (``np.random.rand`` with
        ``import numpy as np`` resolves to ``numpy.random.rand``), and
        from-imports are expanded for bare names. Returns None for
        chains rooted at anything other than a plain name.
        """
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        root = cur.id
        base = self.module_aliases.get(root)
        if base is None:
            base = self.from_imports.get(root, root)
        parts.append(base)
        return ".".join(reversed(parts))

    def file_suppressions(self) -> set[str]:
        """Rule ids suppressed for the whole file via ``disable-file=``."""
        out: set[str] = set()
        for line in self.lines:
            m = _SUPPRESS_FILE_RE.search(line)
            if m:
                out.update(x.strip() for x in m.group(1).split(","))
        return out

    def line_suppressions(self, lineno: int) -> set[str]:
        """Rule ids suppressed on one line via an inline ``disable=``."""
        m = _SUPPRESS_RE.search(self.line(lineno))
        if not m:
            return set()
        return {x.strip() for x in m.group(1).split(",")}

    def next_line_suppressions(self, lineno: int) -> set[str]:
        """Rule ids a ``disable-next-line=`` on ``lineno`` applies ahead."""
        m = _SUPPRESS_NEXT_RE.search(self.line(lineno))
        if not m:
            return set()
        return {x.strip() for x in m.group(1).split(",")}

    def span_suppressions(self, start: int, end: int) -> set[str]:
        """Every rule id suppressed anywhere on lines ``start..end``.

        Unions inline ``disable=`` directives on the span's own lines
        with ``disable-next-line=`` directives whose *target* line falls
        inside the span — so a multi-line statement (a parenthesized
        continuation) accepts the comment on any of its physical lines,
        and a directive above a decorator covers the decorated def.
        """
        out: set[str] = set()
        for ln in range(start, end + 1):
            out |= self.line_suppressions(ln)
        for ln in range(start - 1, end):
            out |= self.next_line_suppressions(ln)
        return out


#: A rule checker yields (node, message) pairs for each violation.
Checker = Callable[[ModuleContext], Iterable[tuple[ast.AST, str]]]


@dataclass(frozen=True)
class LintRule:
    """A registered lint rule: identity, severity, scope, and checker."""

    rule_id: str
    name: str
    severity: Severity
    description: str
    scope: tuple[str, ...]
    check: Checker

    def applies_to(self, rel_path: str) -> bool:
        """True when the rule's directory scope covers ``rel_path``."""
        if not self.scope:
            return True
        return any(part in rel_path for part in self.scope)

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Execute the checker and emit unsuppressed findings."""
        if not self.applies_to(ctx.rel_path):
            return
        file_off = ctx.file_suppressions()
        if self.rule_id in file_off or "all" in file_off:
            return
        for node, message in self.check(ctx):
            lineno = getattr(node, "lineno", 0)
            start, end = _suppression_span(node, lineno)
            suppressed = ctx.span_suppressions(start, end)
            if self.rule_id in suppressed or "all" in suppressed:
                continue
            yield Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=ctx.path,
                line=lineno,
                col=getattr(node, "col_offset", -1) + 1,
                message=message,
            )


def _suppression_span(node: ast.AST, lineno: int) -> tuple[int, int]:
    """The physical-line range a suppression comment may sit on.

    For plain expressions and simple statements this is the node's full
    ``lineno..end_lineno`` extent (covering parenthesized continuations).
    For compound statements (defs, loops, handlers) the span stops at the
    *header* — the line before the first body statement — so a comment
    deep inside a function body never silences a finding anchored on its
    ``def`` line. Decorator lines extend the span upward, which lets
    ``disable-next-line=`` above a decorator cover the decorated def.
    """
    start = lineno
    decorators = getattr(node, "decorator_list", None)
    if decorators:
        start = min([start] + [d.lineno for d in decorators])
    end = getattr(node, "end_lineno", None) or lineno
    body = getattr(node, "body", None)
    if isinstance(body, list) and body and hasattr(body[0], "lineno"):
        end = max(start, body[0].lineno - 1)
    return start, end


_REGISTRY: dict[str, LintRule] = {}


def rule(
    rule_id: str,
    name: str,
    severity: Severity,
    scope: tuple[str, ...] = (),
) -> Callable[[Checker], Checker]:
    """Register a checker function as a lint rule.

    ``scope`` is a tuple of path fragments (``"engine/"``); empty means
    the rule applies everywhere. The checker's docstring becomes the
    rule description.
    """

    def deco(fn: Checker) -> Checker:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id}")
        _REGISTRY[rule_id] = LintRule(
            rule_id=rule_id,
            name=name,
            severity=severity,
            description=(fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else "",
            scope=scope,
            check=fn,
        )
        return fn

    return deco


def all_rules() -> list[LintRule]:
    """Every registered rule, ordered by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> LintRule:
    """Look up one rule by id (KeyError with the known ids on miss)."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None
