"""SARIF export for lint findings.

Emits a minimal SARIF 2.1.0 document — the interchange format code
scanners and review tooling ingest — from the shared
:class:`~repro.analysis.findings.Finding` model. Only the fields
consumers actually read are populated (tool driver with rule metadata,
results with ruleId/level/message/physical location); optional SARIF
machinery (runs graphs, fixes, code flows) is omitted.
"""

from __future__ import annotations

import json

from .findings import Finding, Severity
from .rules import LintRule

__all__ = ["findings_to_sarif", "write_sarif"]

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning", Severity.INFO: "note"}


def findings_to_sarif(
    findings: list[Finding], rules: list[LintRule] | None = None
) -> dict:
    """Build a SARIF 2.1.0 ``dict`` for the given findings.

    ``rules`` populates the tool's rule table (id, name, short
    description, default level); rules referenced by findings but absent
    from the table are still valid SARIF.
    """
    rule_meta = [
        {
            "id": r.rule_id,
            "name": r.name,
            "shortDescription": {"text": r.description or r.name},
            "defaultConfiguration": {"level": _LEVELS[r.severity]},
        }
        for r in (rules or [])
    ]
    results = [
        {
            "ruleId": f.rule_id,
            "level": _LEVELS[f.severity],
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path.replace("\\", "/")},
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": max(f.col, 1),
                        },
                    }
                }
            ],
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))
    ]
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rule_meta,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(
    path: str, findings: list[Finding], rules: list[LintRule] | None = None
) -> None:
    """Serialize :func:`findings_to_sarif` to ``path`` (pretty-printed)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(findings_to_sarif(findings, rules), fh, indent=2)
        fh.write("\n")
