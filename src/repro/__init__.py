"""repro — reproduction of "Realistic Large-Scale Online Network Simulation".

Liu & Chien, SC 2004 (MaSSF / MicroGrid). The package implements:

- :mod:`repro.partition` — METIS-like multilevel graph partitioner,
- :mod:`repro.topology` — BRITE/maBrite Internet-like topology generation,
- :mod:`repro.routing` — OSPF intra-AS and BGP4 policy inter-AS routing,
- :mod:`repro.engine` — conservative parallel discrete-event engine + cluster
  cost model,
- :mod:`repro.netsim` — packet-level network models (IP/UDP/TCP, traffic apps),
- :mod:`repro.online` — online (live-traffic) simulation layer,
- :mod:`repro.profilers` — traffic profiling,
- :mod:`repro.obs` — runtime observability (instrument registry, the
  PROF profile bridge, JSON/Prometheus exporters),
- :mod:`repro.core` — the paper's contribution: TOP/PROF/HTOP/HPROF load
  balance and the hierarchical Tmll sweep,
- :mod:`repro.metrics`, :mod:`repro.cluster`, :mod:`repro.experiments` —
  evaluation metrics, cluster model, and the paper's experiment pipelines.

Quickstart
----------
>>> from repro import generate_flat_network, MappingPipeline, Approach
>>> net = generate_flat_network(num_routers=200, num_hosts=50, seed=1)
>>> pipeline = MappingPipeline.for_network(net, num_engines=8)
>>> mapping = pipeline.run(Approach.HPROF)
"""

from importlib import metadata as _metadata

try:  # pragma: no cover - version resolution
    __version__ = _metadata.version("repro")
except _metadata.PackageNotFoundError:  # pragma: no cover
    __version__ = "0.0.0.dev0"

# Lazy top-level API (PEP 562): keeps `import repro.partition` cheap and
# avoids import cycles while subpackages are developed/tested in isolation.
_LAZY = {
    "Approach": ("repro.core", "Approach"),
    "MappingPipeline": ("repro.core", "MappingPipeline"),
    "NetworkMapping": ("repro.core", "NetworkMapping"),
    "generate_flat_network": ("repro.topology", "generate_flat_network"),
    "generate_multi_as_network": ("repro.topology", "generate_multi_as_network"),
    "WeightedGraph": ("repro.partition", "WeightedGraph"),
    "partition_kway": ("repro.partition", "partition_kway"),
    "observed_run": ("repro.obs", "observed_run"),
    "profile_from_registry": ("repro.obs", "profile_from_registry"),
}

__all__ = ["__version__", *sorted(_LAZY)]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
